/**
 * @file
 * Tests for the parallel sweep engine: results come back in
 * submission order and are bit-identical to serial execution,
 * whatever the worker count; exhaustible (non-looping) workloads and
 * degenerate job lists behave; GAAS_BENCH_JOBS resolves the worker
 * count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/sweep.hh"
#include "core/workload.hh"
#include "trace/source.hh"
#include "util/fault.hh"

namespace gaas::core
{
namespace
{

/**
 * Field-by-field equality of two SimResults, excluding hostSeconds
 * (the one field documented as non-deterministic wall-clock timing).
 */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.configName, b.configName);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cpuStallCycles, b.cpuStallCycles);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    EXPECT_EQ(a.syscallSwitches, b.syscallSwitches);

    EXPECT_EQ(a.comp.l1iMiss, b.comp.l1iMiss);
    EXPECT_EQ(a.comp.l1dMiss, b.comp.l1dMiss);
    EXPECT_EQ(a.comp.l1Writes, b.comp.l1Writes);
    EXPECT_EQ(a.comp.wbWait, b.comp.wbWait);
    EXPECT_EQ(a.comp.l2iMiss, b.comp.l2iMiss);
    EXPECT_EQ(a.comp.l2dMiss, b.comp.l2dMiss);
    EXPECT_EQ(a.comp.tlb, b.comp.tlb);

    EXPECT_EQ(a.sys.ifetches, b.sys.ifetches);
    EXPECT_EQ(a.sys.l1iMisses, b.sys.l1iMisses);
    EXPECT_EQ(a.sys.loads, b.sys.loads);
    EXPECT_EQ(a.sys.l1dReadMisses, b.sys.l1dReadMisses);
    EXPECT_EQ(a.sys.stores, b.sys.stores);
    EXPECT_EQ(a.sys.l1dWriteMisses, b.sys.l1dWriteMisses);
    EXPECT_EQ(a.sys.writeOnlyReadMisses, b.sys.writeOnlyReadMisses);
    EXPECT_EQ(a.sys.l2iAccesses, b.sys.l2iAccesses);
    EXPECT_EQ(a.sys.l2iMisses, b.sys.l2iMisses);
    EXPECT_EQ(a.sys.l2dAccesses, b.sys.l2dAccesses);
    EXPECT_EQ(a.sys.l2dMisses, b.sys.l2dMisses);
    EXPECT_EQ(a.sys.l2DirtyMisses, b.sys.l2DirtyMisses);
    EXPECT_EQ(a.sys.l2WriteAllocates, b.sys.l2WriteAllocates);

    EXPECT_EQ(a.sys.wb.pushes, b.sys.wb.pushes);
    EXPECT_EQ(a.sys.wb.fullStalls, b.sys.wb.fullStalls);
    EXPECT_EQ(a.sys.wb.fullStallCycles, b.sys.wb.fullStallCycles);
    EXPECT_EQ(a.sys.wb.drainWaits, b.sys.wb.drainWaits);
    EXPECT_EQ(a.sys.wb.drainWaitCycles, b.sys.wb.drainWaitCycles);
    EXPECT_EQ(a.sys.wb.bypasses, b.sys.wb.bypasses);
    EXPECT_EQ(a.sys.wb.maxOccupancy, b.sys.wb.maxOccupancy);

    EXPECT_EQ(a.sys.memory.reads, b.sys.memory.reads);
    EXPECT_EQ(a.sys.memory.dirtyWritebacks, b.sys.memory.dirtyWritebacks);
    EXPECT_EQ(a.sys.memory.busWaitCycles, b.sys.memory.busWaitCycles);
    EXPECT_EQ(a.sys.memory.busWaits, b.sys.memory.busWaits);

    EXPECT_EQ(a.sys.itlb.accesses, b.sys.itlb.accesses);
    EXPECT_EQ(a.sys.itlb.misses, b.sys.itlb.misses);
    EXPECT_EQ(a.sys.dtlb.accesses, b.sys.dtlb.accesses);
    EXPECT_EQ(a.sys.dtlb.misses, b.sys.dtlb.misses);
}

/**
 * A six-config L1-D size ladder -- the shape of a real figure run,
 * scaled down so the whole test stays fast under TSan.
 */
std::vector<SweepJob>
ladder()
{
    std::vector<SweepJob> jobs;
    for (std::uint64_t words : {1024u, 2048u, 4096u, 8192u,
                                16384u, 32768u}) {
        SweepJob job;
        job.config = baseline();
        job.config.name = "l1d-" + std::to_string(words) + "w";
        job.config.l1d.sizeWords = words;
        job.mpLevel = 2;
        job.instructions = 20'000;
        job.warmup = 5'000;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(Sweep, PoolIsBitIdenticalToSerialAtAnyWorkerCount)
{
    const auto jobs = ladder();

    // The serial reference: the exact per-job function, in order.
    std::vector<SimResult> serial;
    for (const auto &job : jobs)
        serial.push_back(runSweepJob(job));

    for (unsigned workers : {1u, 2u, 8u}) {
        SweepStats stats;
        const auto pooled = runSweep(jobs, workers, &stats);
        ASSERT_EQ(pooled.size(), jobs.size()) << workers;
        EXPECT_EQ(stats.jobs, jobs.size());
        EXPECT_EQ(stats.workers, workers);
        EXPECT_GT(stats.references, 0u);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " job=" + std::to_string(i));
            expectSameResult(pooled[i], serial[i]);
        }
    }
}

TEST(Sweep, ResultsComeBackInSubmissionOrder)
{
    const auto jobs = ladder();
    const auto results = runSweep(jobs, 8);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(results[i].configName, jobs[i].config.name);
}

TEST(Sweep, ExhaustedTraceEndsIdenticallySerialAndPooled)
{
    // A finite (non-looping) workload: the budget is far larger than
    // the trace, so the run ends on exhaustion, not on the budget.
    auto finite_workload = [] {
        std::vector<trace::MemRef> refs;
        for (int i = 0; i < 32; ++i) {
            refs.push_back(trace::instRef(0x40'0000 + 4 * i));
            if (i % 4 == 0)
                refs.push_back(trace::loadRef(0x80'0000 + 16 * i));
        }
        Workload wl;
        wl.add(std::make_unique<trace::VectorSource>(
                   "finite", std::move(refs)),
               1.0, "finite");
        return wl;
    };

    std::vector<SweepJob> jobs(3);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].config = baseline();
        jobs[i].config.name = "finite-" + std::to_string(i);
        jobs[i].instructions = 1'000'000;
        jobs[i].workload = finite_workload;
    }

    std::vector<SimResult> serial;
    for (const auto &job : jobs)
        serial.push_back(runSweepJob(job));
    EXPECT_EQ(serial[0].instructions, 32u);

    const auto pooled = runSweep(jobs, 4);
    ASSERT_EQ(pooled.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameResult(pooled[i], serial[i]);
    }
}

TEST(Sweep, SingleJobAndEmptyJobLists)
{
    std::vector<SweepJob> one = ladder();
    one.resize(1);

    const auto serial = runSweepJob(one[0]);
    SweepStats stats;
    const auto pooled = runSweep(one, 8, &stats);
    ASSERT_EQ(pooled.size(), 1u);
    expectSameResult(pooled[0], serial);
    EXPECT_EQ(stats.jobs, 1u);

    const auto none = runSweep({}, 4, &stats);
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(stats.jobs, 0u);
}

TEST(Sweep, WorkerCountComesFromEnvironment)
{
    ::setenv("GAAS_BENCH_JOBS", "3", 1);
    EXPECT_EQ(sweepWorkers(), 3u);
    ::setenv("GAAS_BENCH_JOBS", "0", 1); // invalid: fall through
    EXPECT_GE(sweepWorkers(), 1u);
    ::unsetenv("GAAS_BENCH_JOBS");
    EXPECT_GE(sweepWorkers(), 1u);
}

TEST(Sweep, WorkerCountParsesStrictly)
{
    ::unsetenv("GAAS_BENCH_JOBS");
    const unsigned fallback = sweepWorkers();

    // A half-numeric value must be rejected whole, not read as its
    // numeric prefix ("4x" silently becoming 4 workers is the bug
    // this guards against).
    for (const char *bad :
         {"4x", "x4", "+4", "-4", " 4", "4 ", "0",
          "18446744073709551616",  // overflows uint64
          "4294967296"}) {         // valid uint64, overflows unsigned
        ::setenv("GAAS_BENCH_JOBS", bad, 1);
        EXPECT_EQ(sweepWorkers(), fallback) << '"' << bad << '"';
    }

    ::setenv("GAAS_BENCH_JOBS", "2", 1);
    EXPECT_EQ(sweepWorkers(), 2u);
    ::unsetenv("GAAS_BENCH_JOBS");
}

TEST(Sweep, PerJobTelemetryIsRecorded)
{
    const auto jobs = ladder();

    SweepStats serial_stats;
    runSweep(jobs, 1, &serial_stats);
    ASSERT_EQ(serial_stats.perJob.size(), jobs.size());
    for (const auto &js : serial_stats.perJob) {
        EXPECT_EQ(js.worker, 0u);
        EXPECT_DOUBLE_EQ(js.queueWaitSeconds, 0.0);
        EXPECT_GE(js.buildSeconds, 0.0);
        EXPECT_GE(js.simSeconds, 0.0);
        // The phases are disjoint sub-intervals of the job total.
        EXPECT_LE(js.buildSeconds + js.simSeconds,
                  js.totalSeconds + 1e-9);
    }

    const unsigned workers = 3;
    SweepStats pooled_stats;
    runSweep(jobs, workers, &pooled_stats);
    ASSERT_EQ(pooled_stats.perJob.size(), jobs.size());
    for (const auto &js : pooled_stats.perJob) {
        EXPECT_LT(js.worker, workers);
        EXPECT_GE(js.queueWaitSeconds, 0.0);
        EXPECT_LE(js.buildSeconds + js.simSeconds,
                  js.totalSeconds + 1e-9);
    }
}

TEST(Sweep, ProgressCallbackRunsInSubmissionOrder)
{
    const auto jobs = ladder();
    std::vector<std::string> seen;
    const auto results = runSweep(
        jobs, 4, nullptr,
        [&seen](std::size_t index, SweepOutcome &outcome) {
            EXPECT_EQ(index, seen.size());
            EXPECT_EQ(outcome.status, PointStatus::Ok);
            seen.push_back(outcome.result.configName);
        });
    ASSERT_EQ(seen.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(seen[i], jobs[i].config.name);
    ASSERT_EQ(results.size(), jobs.size());
}

/** RAII disarm so a failing test cannot leak an armed fault. */
struct FaultGuard
{
    explicit FaultGuard(const char *spec) { fault::configure(spec); }
    ~FaultGuard() { fault::reset(); }
};

TEST(Sweep, FailedJobIsIsolatedAndEveryOtherPointCompletes)
{
    const auto jobs = ladder();
    // Fail the 3rd sweep job; serial execution (workers = 1) makes
    // the process-wide hit counter deterministic.
    FaultGuard guard("sweep-job:3");

    SweepStats stats;
    const auto outcomes = runSweepOutcomes(jobs, 1, &stats);
    ASSERT_EQ(outcomes.size(), jobs.size());
    EXPECT_EQ(stats.failedPoints, 1u);
    EXPECT_EQ(stats.okPoints, jobs.size() - 1);

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        SCOPED_TRACE(i);
        if (i == 2) {
            EXPECT_EQ(outcomes[i].status, PointStatus::Failed);
            EXPECT_EQ(outcomes[i].errorCode, ErrorCode::Internal);
            EXPECT_NE(outcomes[i].error.find("injected fault"),
                      std::string::npos);
            // Zeroed result, but the config name survives so the
            // figure row still labels itself.
            EXPECT_EQ(outcomes[i].result.configName,
                      jobs[i].config.name);
            EXPECT_EQ(outcomes[i].result.cycles, 0u);
        } else {
            EXPECT_EQ(outcomes[i].status, PointStatus::Ok);
            EXPECT_GT(outcomes[i].result.cycles, 0u);
        }
    }
}

TEST(Sweep, RunSweepRethrowsTheFirstFailureAfterDraining)
{
    const auto jobs = ladder();
    FaultGuard guard("sweep-job:2");
    try {
        runSweep(jobs, 1);
        FAIL() << "runSweep did not rethrow the failure";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Internal);
        EXPECT_NE(std::string(e.what()).find("injected fault"),
                  std::string::npos);
    }
}

TEST(Sweep, WatchdogTripsAsAStructuredFailure)
{
    // One cycle per instruction is an impossible budget: the very
    // first instruction (L1 fill from a cold cache) exceeds it, so
    // the watchdog must convert the runaway into a clean Failed
    // outcome instead of a wedged run.
    auto jobs = ladder();
    jobs.resize(2);
    jobs[1].watchdogCycles = 1;

    SweepStats stats;
    const auto outcomes = runSweepOutcomes(jobs, 1, &stats);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(outcomes[1].status, PointStatus::Failed);
    EXPECT_EQ(outcomes[1].errorCode, ErrorCode::Watchdog);
    EXPECT_NE(outcomes[1].error.find("watchdog budget"),
              std::string::npos);
    EXPECT_EQ(stats.failedPoints, 1u);
}

TEST(Sweep, GenerousWatchdogBudgetChangesNothing)
{
    auto jobs = ladder();
    jobs.resize(2);
    const auto plain = runSweep(jobs, 1);
    for (auto &job : jobs)
        job.watchdogCycles = 1'000'000;
    const auto watched = runSweep(jobs, 1);
    ASSERT_EQ(watched.size(), plain.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameResult(watched[i], plain[i]);
    }
}

TEST(Sweep, PointStatusNamesRoundTrip)
{
    for (PointStatus status : {PointStatus::Ok, PointStatus::Failed,
                               PointStatus::Degraded}) {
        PointStatus parsed;
        ASSERT_TRUE(parsePointStatus(pointStatusName(status),
                                     parsed));
        EXPECT_EQ(parsed, status);
    }
    PointStatus ignored;
    EXPECT_FALSE(parsePointStatus("nonsense", ignored));
    EXPECT_FALSE(parsePointStatus("", ignored));
}

} // namespace
} // namespace gaas::core
