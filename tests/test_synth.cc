/**
 * @file
 * Unit and statistical tests for the synthetic workload generator:
 * CodeModel, DataModel, SyntheticBenchmark, and the Table-1 suite.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "synth/benchmark.hh"
#include "synth/code_model.hh"
#include "synth/data_model.hh"
#include "synth/suite.hh"
#include "trace/compose.hh"
#include "util/logging.hh"

namespace gaas::synth
{
namespace
{

TEST(CodeModel, DeterministicForSeed)
{
    CodeParams params;
    CodeModel a(params, 42), b(params, 42), c(params, 43);
    bool same = true, differs = false;
    for (int i = 0; i < 10000; ++i) {
        const Addr pa = a.nextPc();
        same = same && (pa == b.nextPc());
        differs = differs || (pa != c.nextPc());
    }
    EXPECT_TRUE(same);
    EXPECT_TRUE(differs);
}

TEST(CodeModel, ResetReplaysIdentically)
{
    CodeModel model(CodeParams{}, 7);
    std::vector<Addr> first;
    for (int i = 0; i < 5000; ++i)
        first.push_back(model.nextPc());
    model.reset();
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(model.nextPc(), first[i]) << "at " << i;
}

TEST(CodeModel, AddressesAreWordAlignedAndInText)
{
    CodeParams params;
    CodeModel model(params, 3);
    const Addr text_end =
        layout::kTextBase + 64 * kPageBytes +
        wordsToBytes(model.footprintWords() * 2);
    for (int i = 0; i < 50000; ++i) {
        const Addr pc = model.nextPc();
        EXPECT_EQ(pc % kWordBytes, 0u);
        EXPECT_GE(pc, layout::kTextBase);
        EXPECT_LT(pc, text_end);
    }
}

TEST(CodeModel, FootprintTracksBudget)
{
    CodeParams params;
    params.codeWords = 32 * 1024;
    CodeModel model(params, 5);
    // Generation consumes nearly the whole budget (pads allowed).
    EXPECT_GT(model.footprintWords(), params.codeWords / 4);
    EXPECT_LT(model.footprintWords(), params.codeWords * 2);
    EXPECT_EQ(model.procedureCount(), params.procCount);
}

TEST(CodeModel, SequentialRunsDominate)
{
    // Most instructions advance the PC by one word (straight-line
    // execution), as in real code.
    CodeModel model(CodeParams{}, 11);
    Addr prev = model.nextPc();
    int sequential = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const Addr pc = model.nextPc();
        if (pc == prev + kWordBytes)
            ++sequential;
        prev = pc;
    }
    EXPECT_GT(sequential, n / 2);
}

TEST(CodeModel, RejectsBadParams)
{
    CodeParams params;
    params.procCount = 0;
    EXPECT_THROW(CodeModel(params, 1), FatalError);

    params = CodeParams{};
    params.codeWords = 4;
    EXPECT_THROW(CodeModel(params, 1), FatalError);

    params = CodeParams{};
    params.meanRunLen = 0.5;
    EXPECT_THROW(CodeModel(params, 1), FatalError);
}

TEST(DataModel, DeterministicAndResettable)
{
    DataParams params;
    DataModel a(params, 9), b(params, 9);
    std::vector<Addr> first;
    for (int i = 0; i < 3000; ++i) {
        const Addr addr =
            (i % 3 == 0) ? a.nextStore() : a.nextLoad();
        first.push_back(addr);
        EXPECT_EQ(addr,
                  (i % 3 == 0) ? b.nextStore() : b.nextLoad());
    }
    a.reset();
    for (int i = 0; i < 3000; ++i) {
        EXPECT_EQ((i % 3 == 0) ? a.nextStore() : a.nextLoad(),
                  first[i]);
    }
}

TEST(DataModel, AddressesAreWordAligned)
{
    DataModel model(DataParams{}, 21);
    for (int i = 0; i < 20000; ++i) {
        EXPECT_EQ(model.nextLoad() % kWordBytes, 0u);
        EXPECT_EQ(model.nextStore() % kWordBytes, 0u);
    }
}

TEST(DataModel, TouchesAllConfiguredRegions)
{
    DataParams params; // default has all four regions
    DataModel model(DataParams{}, 33);
    std::map<const char *, int> regions;
    auto classify = [&](Addr a) {
        if (a >= 0x7000'0000)
            regions["stack"]++;
        else if (a >= layout::kArrayBase)
            regions["array"]++;
        else if (a >= layout::kHeapBase)
            regions["heap"]++;
        else
            regions["global"]++;
    };
    for (int i = 0; i < 20000; ++i) {
        classify(model.nextLoad());
        classify(model.nextStore());
    }
    EXPECT_GT(regions["stack"], 0);
    EXPECT_GT(regions["global"], 0);
    EXPECT_GT(regions["array"], 0);
    EXPECT_GT(regions["heap"], 0);
    (void)params;
}

TEST(DataModel, HeapDrawsAreSkewed)
{
    // A small set of hot lines should absorb most heap traffic.
    DataParams params;
    params.loadStackFrac = 0;
    params.loadGlobalFrac = 0;
    params.loadArrayFrac = 0;
    params.sameLineBurstProb = 0;
    DataModel model(params, 17);
    std::map<Addr, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        counts[model.nextLoad() & ~Addr{15}]++;
    // Count traffic captured by the 128 hottest lines.
    std::vector<int> sorted;
    for (const auto &[addr, count] : counts)
        sorted.push_back(count);
    std::sort(sorted.rbegin(), sorted.rend());
    int hot = 0;
    for (std::size_t i = 0; i < 128 && i < sorted.size(); ++i)
        hot += sorted[i];
    EXPECT_GT(hot, n / 2);
}

TEST(DataModel, ArrayWalkIsBlocked)
{
    // With one array and nothing else, consecutive draws scan a
    // segment repeatedly before advancing.
    DataParams params;
    params.arrayCount = 1;
    params.arrayWords = 64 * 1024;
    params.arraySegWords = 64;
    params.arraySegRepeats = 4;
    params.arrayStrideWords = 1;
    params.loadArrayFrac = 1.0;
    params.loadStackFrac = params.loadGlobalFrac = 0.0;
    params.sameLineBurstProb = 0;
    DataModel model(params, 55);

    std::set<Addr> unique;
    const int accesses = 64 * 4 * 3; // three full segments
    for (int i = 0; i < accesses; ++i)
        unique.insert(model.nextLoad());
    // Three segments of 64 words = 192 unique addresses.
    EXPECT_EQ(unique.size(), 192u);
}

TEST(DataModel, RejectsBadFractions)
{
    DataParams params;
    params.loadStackFrac = 0.8;
    params.loadGlobalFrac = 0.3;
    EXPECT_THROW(DataModel(params, 1), FatalError);

    params = DataParams{};
    params.heapWords = 0;
    EXPECT_THROW(DataModel(params, 1), FatalError);
}

TEST(SyntheticBenchmark, EmitsExactInstructionCount)
{
    BenchmarkSpec spec = defaultSuite()[0];
    spec.simInstructions = 10000;
    SyntheticBenchmark bench(spec);
    trace::MemRef ref;
    Count instructions = 0, data = 0;
    while (bench.next(ref)) {
        if (ref.isInst())
            ++instructions;
        else
            ++data;
    }
    EXPECT_EQ(instructions, 10000u);
    EXPECT_GT(data, 0u);
}

TEST(SyntheticBenchmark, MixMatchesSpecFractions)
{
    BenchmarkSpec spec = defaultSuite()[0];
    spec.simInstructions = 400000;
    trace::MixSource mix(std::make_unique<SyntheticBenchmark>(spec));
    trace::MemRef ref;
    while (mix.next(ref)) {
    }
    const auto &m = mix.mix();
    EXPECT_NEAR(m.loadFraction(), spec.loadFrac, 0.02);
    EXPECT_NEAR(m.storeFraction(), spec.storeFrac, 0.02);
}

TEST(SyntheticBenchmark, SyscallRateMatchesSpec)
{
    BenchmarkSpec spec = defaultSuite()[2]; // xlisp: 4 / M instr
    spec.simInstructions = 2'000'000;
    trace::MixSource mix(std::make_unique<SyntheticBenchmark>(spec));
    trace::MemRef ref;
    while (mix.next(ref)) {
    }
    const double per_m =
        static_cast<double>(mix.mix().syscalls) /
        (static_cast<double>(mix.mix().instructions) * 1e-6);
    EXPECT_NEAR(per_m, spec.syscallsPerMInstr,
                spec.syscallsPerMInstr * 0.5 + 1.0);
}

TEST(SyntheticBenchmark, ResetReplaysIdentically)
{
    BenchmarkSpec spec = defaultSuite()[3];
    spec.simInstructions = 20000;
    SyntheticBenchmark bench(spec);
    std::vector<trace::MemRef> first;
    trace::MemRef ref;
    while (bench.next(ref))
        first.push_back(ref);
    bench.reset();
    std::size_t i = 0;
    while (bench.next(ref)) {
        ASSERT_LT(i, first.size());
        EXPECT_EQ(ref, first[i]) << "at " << i;
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST(SyntheticBenchmark, StoreBurstsAreWordSequential)
{
    BenchmarkSpec spec = defaultSuite()[0];
    spec.simInstructions = 200000;
    SyntheticBenchmark bench(spec);
    trace::MemRef ref, prev{};
    bool have_prev_store = false;
    Count sequential = 0, stores = 0;
    while (bench.next(ref)) {
        if (ref.isStore()) {
            ++stores;
            if (have_prev_store &&
                ref.addr == prev.addr + kWordBytes) {
                ++sequential;
            }
            prev = ref;
            have_prev_store = true;
        } else if (ref.isInst()) {
            continue; // bursts span instructions
        } else {
            have_prev_store = false;
        }
    }
    // Bursts of mean 3 make a majority of stores word-sequential.
    EXPECT_GT(sequential, stores / 3);
}

TEST(SyntheticBenchmark, RejectsBadSpec)
{
    BenchmarkSpec spec = defaultSuite()[0];
    spec.loadFrac = 0.8;
    spec.storeFrac = 0.4;
    EXPECT_THROW(SyntheticBenchmark{spec}, FatalError);

    spec = defaultSuite()[0];
    spec.simInstructions = 0;
    EXPECT_THROW(SyntheticBenchmark{spec}, FatalError);
}

TEST(Suite, HasSixteenDistinctBenchmarks)
{
    const auto &suite = defaultSuite();
    EXPECT_EQ(suite.size(), kSuiteSize);
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const auto &spec : suite) {
        names.insert(spec.name);
        seeds.insert(spec.seed);
        EXPECT_GE(spec.baseCpi, 1.0) << spec.name;
        EXPECT_GT(spec.loadFrac, 0.0) << spec.name;
        EXPECT_GT(spec.storeFrac, 0.0) << spec.name;
        EXPECT_LE(spec.loadFrac + spec.storeFrac, 1.0) << spec.name;
        // Every spec must construct cleanly.
        EXPECT_NO_THROW(SyntheticBenchmark{spec}) << spec.name;
    }
    EXPECT_EQ(names.size(), kSuiteSize);
    EXPECT_EQ(seeds.size(), kSuiteSize);
}

TEST(Suite, Level8AveragesMatchPaperConstants)
{
    // The paper: stores are 0.0725 of instructions; the CPU-stall
    // floor is 1.238 CPI (Sections 4 and 6).
    const auto specs = workloadSpecs(8);
    double store_sum = 0, cpi_sum = 0;
    for (const auto &spec : specs) {
        store_sum += spec.storeFrac;
        cpi_sum += spec.baseCpi;
    }
    EXPECT_NEAR(store_sum / 8.0, 0.0725, 0.002);
    EXPECT_NEAR(cpi_sum / 8.0, 1.238, 0.01);
}

TEST(Suite, WorkloadSpecsValidatesLevel)
{
    EXPECT_THROW(workloadSpecs(0), FatalError);
    EXPECT_THROW(workloadSpecs(17), FatalError);
    EXPECT_EQ(workloadSpecs(1).size(), 1u);
    EXPECT_EQ(workloadSpecs(16).size(), 16u);
}

TEST(Suite, ScaleSuiteAdjustsInstructions)
{
    auto specs = workloadSpecs(2);
    const Count before = specs[0].simInstructions;
    scaleSuite(specs, 0.5);
    EXPECT_EQ(specs[0].simInstructions, before / 2);
    EXPECT_THROW(scaleSuite(specs, 0.0), FatalError);
    // Scaling never drops below the floor.
    scaleSuite(specs, 1e-9);
    EXPECT_GE(specs[0].simInstructions, 1000u);
}

TEST(Suite, ArithClassTags)
{
    EXPECT_STREQ(arithClassTag(ArithClass::Integer), "(I)");
    EXPECT_STREQ(arithClassTag(ArithClass::SingleFloat), "(S)");
    EXPECT_STREQ(arithClassTag(ArithClass::DoubleFloat), "(D)");
}

/** Every suite benchmark generates and replays deterministically. */
class SuiteBenchmark : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SuiteBenchmark, GeneratesValidRecords)
{
    BenchmarkSpec spec = defaultSuite()[GetParam()];
    spec.simInstructions = 30000;
    SyntheticBenchmark bench(spec);
    trace::MemRef ref;
    bool expect_inst = true;
    Count data_run = 0;
    while (bench.next(ref)) {
        EXPECT_EQ(ref.addr % kWordBytes, 0u);
        if (ref.isInst()) {
            expect_inst = false;
            data_run = 0;
        } else {
            // At most one data reference per instruction.
            EXPECT_FALSE(expect_inst);
            ++data_run;
            EXPECT_LE(data_run, 1u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(All, SuiteBenchmark,
                         ::testing::Range(0u, 16u));

} // namespace
} // namespace gaas::synth
