/**
 * @file
 * Exception-path regression tests for util/thread_pool: a throwing
 * task's exception surfaces from its own future (and nowhere else),
 * workers survive any number of throwers, tasks queued behind a
 * thrower still run, and destruction never abandons a future.  The
 * suite runs under TSan via the tsan preset, so the mutex discipline
 * of the queue is proven as well as the exception contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include "util/error.hh"
#include "util/thread_pool.hh"

namespace gaas
{
namespace
{

TEST(ThreadPool, ThrowingTaskSurfacesFromItsFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task exploded");
    });
    auto good = pool.submit([] { return 42; });

    EXPECT_EQ(good.get(), 42);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, SimErrorKeepsItsCodeAcrossTheFuture)
{
    std::future<int> f;
    {
        ThreadPool pool(1);
        f = pool.submit([]() -> int {
            gaas_error(ErrorCode::Watchdog, "pretend zero progress");
        });
        // Join before inspecting: the worker releases its
        // exception_ptr reference when the task is destroyed, and
        // that release is only ordered against our read of the
        // exception object by the pool's join (the refcount atomics
        // live in libstdc++, which TSan cannot see into).
    }
    try {
        f.get();
        FAIL() << "future::get did not rethrow";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Watchdog);
    }
}

TEST(ThreadPool, WorkersSurviveManyInterleavedThrowers)
{
    // Far more tasks than workers, alternating throwers and normal
    // tasks: every future must resolve (value or exception), and the
    // full set of normal tasks must actually have executed.
    constexpr int kTasks = 200;
    ThreadPool pool(3);
    std::atomic<int> executed{0};

    std::vector<std::future<int>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([i, &executed]() -> int {
            if (i % 3 == 0)
                throw std::runtime_error("thrower");
            ++executed;
            return i;
        }));
    }

    int threw = 0;
    for (int i = 0; i < kTasks; ++i) {
        try {
            EXPECT_EQ(futures[i].get(), i);
        } catch (const std::runtime_error &) {
            ++threw;
            EXPECT_EQ(i % 3, 0);
        }
    }
    EXPECT_EQ(threw, (kTasks + 2) / 3);
    EXPECT_EQ(executed.load(), kTasks - threw);
}

TEST(ThreadPool, TasksQueuedBehindThrowerRunBeforeDestruction)
{
    // A single worker guarantees queue order: the thrower sits in
    // front of the normal tasks, and the pool's destructor must still
    // drain all of them -- a dropped packaged_task would surface as
    // future_error(broken_promise) at get().
    std::atomic<int> ran{0};
    std::future<void> thrower;
    std::vector<std::future<int>> after;
    {
        ThreadPool pool(1);
        thrower = pool.submit(
            [] { throw std::runtime_error("front of queue"); });
        for (int i = 0; i < 8; ++i)
            after.push_back(pool.submit([i, &ran] {
                ++ran;
                return i;
            }));
        // Destructor joins here with most tasks still queued.
    }
    EXPECT_THROW(thrower.get(), std::runtime_error);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(after[i].get(), i);
    EXPECT_EQ(ran.load(), 8);
}

} // namespace
} // namespace gaas
