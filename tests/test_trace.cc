/**
 * @file
 * Unit tests for the trace substrate: records, composing sources,
 * and the binary trace file format.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "trace/compose.hh"
#include "trace/file.hh"
#include "trace/source.hh"
#include "util/logging.hh"

namespace gaas::trace
{
namespace
{

std::vector<MemRef>
sampleTrace()
{
    return {
        instRef(0x400000),
        loadRef(0x10000000),
        instRef(0x400004),
        instRef(0x400008, /*syscall=*/true),
        storeRef(0x7ffeff00),
        instRef(0x40000c),
        storeRef(0x7ffeff04, /*partial_word=*/true),
    };
}

TEST(MemRef, Predicates)
{
    EXPECT_TRUE(instRef(0).isInst());
    EXPECT_FALSE(instRef(0).isData());
    EXPECT_TRUE(loadRef(0).isLoad());
    EXPECT_TRUE(loadRef(0).isData());
    EXPECT_TRUE(storeRef(0).isStore());
    EXPECT_TRUE(instRef(0, true).syscall);
    EXPECT_TRUE(storeRef(0, true).partialWord);
}

TEST(VectorSource, PlaysBackAndResets)
{
    VectorSource src("sample", sampleTrace());
    auto first = collect(src, 100);
    EXPECT_EQ(first, sampleTrace());
    MemRef ref;
    EXPECT_FALSE(src.next(ref));
    src.reset();
    auto second = collect(src, 100);
    EXPECT_EQ(second, sampleTrace());
}

TEST(LimitSource, Truncates)
{
    auto inner =
        std::make_unique<VectorSource>("sample", sampleTrace());
    LimitSource limited(std::move(inner), 3);
    EXPECT_EQ(collect(limited, 100).size(), 3u);
    limited.reset();
    EXPECT_EQ(collect(limited, 100).size(), 3u);
}

TEST(LoopSource, WrapsAround)
{
    auto inner =
        std::make_unique<VectorSource>("sample", sampleTrace());
    LoopSource looped(std::move(inner));
    const auto n = sampleTrace().size();
    auto refs = collect(looped, 3 * n);
    ASSERT_EQ(refs.size(), 3 * n);
    EXPECT_EQ(looped.wraps(), 2u);
    // Third copy matches the first.
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(refs[i], refs[2 * n + i]);
}

TEST(LoopSource, EmptyInnerTerminates)
{
    auto inner = std::make_unique<VectorSource>(
        "empty", std::vector<MemRef>{});
    LoopSource looped(std::move(inner));
    MemRef ref;
    EXPECT_FALSE(looped.next(ref));
}

TEST(ConcatSource, PlaysPartsInOrder)
{
    std::vector<std::unique_ptr<TraceSource>> parts;
    parts.push_back(std::make_unique<VectorSource>(
        "a", std::vector<MemRef>{instRef(1)}));
    parts.push_back(std::make_unique<VectorSource>(
        "b", std::vector<MemRef>{instRef(2), instRef(3)}));
    ConcatSource cat(std::move(parts));
    auto refs = collect(cat, 100);
    ASSERT_EQ(refs.size(), 3u);
    EXPECT_EQ(refs[0].addr, 1u);
    EXPECT_EQ(refs[2].addr, 3u);
    cat.reset();
    EXPECT_EQ(collect(cat, 100).size(), 3u);
}

TEST(MixSource, CountsKinds)
{
    MixSource mix(
        std::make_unique<VectorSource>("sample", sampleTrace()));
    collect(mix, 100);
    const RefMix &m = mix.mix();
    EXPECT_EQ(m.instructions, 4u);
    EXPECT_EQ(m.loads, 1u);
    EXPECT_EQ(m.stores, 2u);
    EXPECT_EQ(m.syscalls, 1u);
    EXPECT_EQ(m.partialWordStores, 1u);
    EXPECT_EQ(m.total(), 7u);
    EXPECT_DOUBLE_EQ(m.loadFraction(), 0.25);
    EXPECT_DOUBLE_EQ(m.storeFraction(), 0.5);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case AND per process: ctest -j runs each
        // case as its own concurrent process, so a shared fixed name
        // races (one case's writer truncates another's reader).
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path = (std::filesystem::temp_directory_path() /
                ("gaas_trace_test_" + std::string(info->name()) +
                 "_" + std::to_string(::getpid()) + ".gtrc"))
                   .string();
    }

    void
    TearDown() override
    {
        std::filesystem::remove(path);
    }

    std::string path;
};

TEST_F(TraceFileTest, RoundTrip)
{
    {
        TraceFileWriter writer(path);
        for (const auto &ref : sampleTrace())
            writer.write(ref);
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), sampleTrace().size());
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), sampleTrace().size());
    auto refs = collect(reader, 100);
    EXPECT_EQ(refs, sampleTrace());
}

TEST_F(TraceFileTest, ResetRewinds)
{
    {
        TraceFileWriter writer(path);
        VectorSource src("sample", sampleTrace());
        EXPECT_EQ(writer.writeAll(src), sampleTrace().size());
    }
    TraceFileReader reader(path);
    auto first = collect(reader, 100);
    reader.reset();
    auto second = collect(reader, 100);
    EXPECT_EQ(first, second);
}

TEST_F(TraceFileTest, LargeTraceBuffering)
{
    std::vector<MemRef> big;
    for (std::uint64_t i = 0; i < 200000; ++i)
        big.push_back(instRef(0x400000 + 4 * i, i % 977 == 0));
    {
        TraceFileWriter writer(path);
        for (const auto &ref : big)
            writer.write(ref);
    } // destructor closes
    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), big.size());
    auto refs = collect(reader, big.size() + 1);
    EXPECT_EQ(refs, big);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileReader("/nonexistent/nope.gtrc"),
                 FatalError);
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[32] = "not a trace file at all";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceFileReader reader(path), FatalError);
}

} // namespace
} // namespace gaas::trace
