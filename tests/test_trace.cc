/**
 * @file
 * Unit tests for the trace substrate: records, composing sources,
 * and the binary trace file format.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "trace/compose.hh"
#include "trace/file.hh"
#include "trace/source.hh"
#include "util/logging.hh"

namespace gaas::trace
{
namespace
{

std::vector<MemRef>
sampleTrace()
{
    return {
        instRef(0x400000),
        loadRef(0x10000000),
        instRef(0x400004),
        instRef(0x400008, /*syscall=*/true),
        storeRef(0x7ffeff00),
        instRef(0x40000c),
        storeRef(0x7ffeff04, /*partial_word=*/true),
    };
}

TEST(MemRef, Predicates)
{
    EXPECT_TRUE(instRef(0).isInst());
    EXPECT_FALSE(instRef(0).isData());
    EXPECT_TRUE(loadRef(0).isLoad());
    EXPECT_TRUE(loadRef(0).isData());
    EXPECT_TRUE(storeRef(0).isStore());
    EXPECT_TRUE(instRef(0, true).syscall);
    EXPECT_TRUE(storeRef(0, true).partialWord);
}

TEST(VectorSource, PlaysBackAndResets)
{
    VectorSource src("sample", sampleTrace());
    auto first = collect(src, 100);
    EXPECT_EQ(first, sampleTrace());
    MemRef ref;
    EXPECT_FALSE(src.next(ref));
    src.reset();
    auto second = collect(src, 100);
    EXPECT_EQ(second, sampleTrace());
}

TEST(LimitSource, Truncates)
{
    auto inner =
        std::make_unique<VectorSource>("sample", sampleTrace());
    LimitSource limited(std::move(inner), 3);
    EXPECT_EQ(collect(limited, 100).size(), 3u);
    limited.reset();
    EXPECT_EQ(collect(limited, 100).size(), 3u);
}

TEST(LoopSource, WrapsAround)
{
    auto inner =
        std::make_unique<VectorSource>("sample", sampleTrace());
    LoopSource looped(std::move(inner));
    const auto n = sampleTrace().size();
    auto refs = collect(looped, 3 * n);
    ASSERT_EQ(refs.size(), 3 * n);
    EXPECT_EQ(looped.wraps(), 2u);
    // Third copy matches the first.
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(refs[i], refs[2 * n + i]);
}

TEST(LoopSource, EmptyInnerTerminates)
{
    auto inner = std::make_unique<VectorSource>(
        "empty", std::vector<MemRef>{});
    LoopSource looped(std::move(inner));
    MemRef ref;
    EXPECT_FALSE(looped.next(ref));
}

TEST(LoopSource, BatchedWrapMatchesNext)
{
    // Every batch size from 1 up to past three laps must straddle the
    // wrap at some offset; the batched stream and its wrap count must
    // match the repeated-next() ground truth exactly.
    const auto sample = sampleTrace();
    const std::size_t n = sample.size();
    const std::size_t want = 3 * n + 2;
    for (std::size_t batch = 1; batch <= want; ++batch) {
        LoopSource byNext(
            std::make_unique<VectorSource>("s", sample));
        LoopSource byBatch(
            std::make_unique<VectorSource>("s", sample));

        std::vector<MemRef> a;
        MemRef ref;
        while (a.size() < want && byNext.next(ref))
            a.push_back(ref);

        std::vector<MemRef> b;
        std::vector<MemRef> buf(batch);
        while (b.size() < want) {
            const std::size_t ask =
                std::min(batch, want - b.size());
            const std::size_t got =
                byBatch.nextBatch(buf.data(), ask);
            ASSERT_GT(got, 0u) << "batch " << batch;
            b.insert(b.end(), buf.begin(), buf.begin() + got);
        }
        ASSERT_EQ(a, b) << "batch " << batch;
        EXPECT_EQ(byNext.wraps(), byBatch.wraps())
            << "batch " << batch;
    }
}

TEST(LoopSource, OneBatchSpansManyWraps)
{
    // A single call much larger than the inner trace fills completely
    // (the refill loop keeps wrapping instead of returning short).
    const auto sample = sampleTrace();
    const std::size_t n = sample.size();
    LoopSource looped(std::make_unique<VectorSource>("s", sample));
    std::vector<MemRef> out(5 * n + 3);
    ASSERT_EQ(looped.nextBatch(out.data(), out.size()), out.size());
    EXPECT_EQ(looped.wraps(), 5u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], sample[i % n]) << "index " << i;
}

TEST(LoopSource, EmptyInnerBatchTerminates)
{
    LoopSource looped(std::make_unique<VectorSource>(
        "empty", std::vector<MemRef>{}));
    MemRef buf[4];
    EXPECT_EQ(looped.nextBatch(buf, 4), 0u);
}

TEST(LoopSource, SkipMatchesDiscardedReads)
{
    // skip(n) must land exactly where n discarded reads would, for
    // skips that stay inside the pass, hit its end exactly, cross
    // it once, and cross it several times -- both before the pass
    // length is known (pre == 0 starts on a fresh source) and
    // after.
    const auto sample = sampleTrace();
    const std::size_t n = sample.size();
    for (std::size_t pre : {std::size_t{0}, std::size_t{3}}) {
        for (std::size_t skip :
             {std::size_t{0}, std::size_t{1}, n - 1, n, n + 1,
              2 * n - 1, 2 * n, 5 * n + 2}) {
            LoopSource skipped(
                std::make_unique<VectorSource>("s", sample));
            LoopSource read(
                std::make_unique<VectorSource>("s", sample));
            (void)collect(skipped, pre);
            (void)collect(read, pre);
            EXPECT_EQ(skipped.skip(skip), skip);
            (void)collect(read, skip);
            EXPECT_EQ(collect(skipped, 2 * n), collect(read, 2 * n))
                << "pre " << pre << " skip " << skip;
        }
    }
}

TEST(LoopSource, SkipCountsWholePassWraps)
{
    const auto sample = sampleTrace();
    const std::size_t n = sample.size();
    LoopSource looped(std::make_unique<VectorSource>("s", sample));
    // Read one record past the end so the pass length is learned.
    (void)collect(looped, n + 1);
    EXPECT_EQ(looped.wraps(), 1u);
    // Three whole passes from offset 1: pure modular arithmetic.
    EXPECT_EQ(looped.skip(3 * n), 3 * n);
    EXPECT_EQ(looped.wraps(), 4u);
    MemRef ref;
    ASSERT_TRUE(looped.next(ref));
    EXPECT_EQ(ref, sample[1]);
}

TEST(LoopSource, SkipOnEmptyInnerReturnsZero)
{
    LoopSource looped(std::make_unique<VectorSource>(
        "empty", std::vector<MemRef>{}));
    EXPECT_EQ(looped.skip(5), 0u);
    MemRef ref;
    EXPECT_FALSE(looped.next(ref));
}

TEST(ConcatSource, PlaysPartsInOrder)
{
    std::vector<std::unique_ptr<TraceSource>> parts;
    parts.push_back(std::make_unique<VectorSource>(
        "a", std::vector<MemRef>{instRef(1)}));
    parts.push_back(std::make_unique<VectorSource>(
        "b", std::vector<MemRef>{instRef(2), instRef(3)}));
    ConcatSource cat(std::move(parts));
    auto refs = collect(cat, 100);
    ASSERT_EQ(refs.size(), 3u);
    EXPECT_EQ(refs[0].addr, 1u);
    EXPECT_EQ(refs[2].addr, 3u);
    cat.reset();
    EXPECT_EQ(collect(cat, 100).size(), 3u);
}

TEST(MixSource, CountsKinds)
{
    MixSource mix(
        std::make_unique<VectorSource>("sample", sampleTrace()));
    collect(mix, 100);
    const RefMix &m = mix.mix();
    EXPECT_EQ(m.instructions, 4u);
    EXPECT_EQ(m.loads, 1u);
    EXPECT_EQ(m.stores, 2u);
    EXPECT_EQ(m.syscalls, 1u);
    EXPECT_EQ(m.partialWordStores, 1u);
    EXPECT_EQ(m.total(), 7u);
    EXPECT_DOUBLE_EQ(m.loadFraction(), 0.25);
    EXPECT_DOUBLE_EQ(m.storeFraction(), 0.5);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case AND per process: ctest -j runs each
        // case as its own concurrent process, so a shared fixed name
        // races (one case's writer truncates another's reader).
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path = (std::filesystem::temp_directory_path() /
                ("gaas_trace_test_" + std::string(info->name()) +
                 "_" + std::to_string(::getpid()) + ".gtrc"))
                   .string();
    }

    void
    TearDown() override
    {
        std::filesystem::remove(path);
    }

    std::string path;
};

TEST_F(TraceFileTest, RoundTrip)
{
    {
        TraceFileWriter writer(path);
        for (const auto &ref : sampleTrace())
            writer.write(ref);
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), sampleTrace().size());
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), sampleTrace().size());
    auto refs = collect(reader, 100);
    EXPECT_EQ(refs, sampleTrace());
}

TEST_F(TraceFileTest, ResetRewinds)
{
    {
        TraceFileWriter writer(path);
        VectorSource src("sample", sampleTrace());
        EXPECT_EQ(writer.writeAll(src), sampleTrace().size());
    }
    TraceFileReader reader(path);
    auto first = collect(reader, 100);
    reader.reset();
    auto second = collect(reader, 100);
    EXPECT_EQ(first, second);
}

TEST_F(TraceFileTest, LargeTraceBuffering)
{
    std::vector<MemRef> big;
    for (std::uint64_t i = 0; i < 200000; ++i)
        big.push_back(instRef(0x400000 + 4 * i, i % 977 == 0));
    {
        TraceFileWriter writer(path);
        for (const auto &ref : big)
            writer.write(ref);
    } // destructor closes
    TraceFileReader reader(path);
    EXPECT_EQ(reader.recordCount(), big.size());
    auto refs = collect(reader, big.size() + 1);
    EXPECT_EQ(refs, big);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileReader("/nonexistent/nope.gtrc"),
                 FatalError);
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[32] = "not a trace file at all";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceFileReader reader(path), FatalError);
}

TEST_F(TraceFileTest, WriterEmitsCurrentVersion)
{
    {
        TraceFileWriter writer(path);
        for (const auto &ref : sampleTrace())
            writer.write(ref);
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.formatVersion(), kTraceVersion);
}

TEST_F(TraceFileTest, V1FilesRemainReadable)
{
    {
        TraceFileWriter writer(path);
        for (const auto &ref : sampleTrace())
            writer.write(ref);
    }
    // Rewrite the header's version field to 1; the payload layout is
    // identical, so a v1 file is this file with an older stamp.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        const unsigned char v1[4] = {1, 0, 0, 0};
        ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
        ASSERT_EQ(std::fwrite(v1, 1, 4, f), 4u);
        std::fclose(f);
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.formatVersion(), 1u);
    EXPECT_EQ(collect(reader, 100), sampleTrace());
}

TEST_F(TraceFileTest, FutureVersionIsFatal)
{
    {
        TraceFileWriter writer(path);
        writer.write(instRef(0x400000));
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        const unsigned char v9[4] = {9, 0, 0, 0};
        ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
        ASSERT_EQ(std::fwrite(v9, 1, 4, f), 4u);
        std::fclose(f);
    }
    EXPECT_THROW(TraceFileReader reader(path), FatalError);
}

TEST_F(TraceFileTest, TruncationIsFatalAtOpen)
{
    {
        TraceFileWriter writer(path);
        for (const auto &ref : sampleTrace())
            writer.write(ref);
    }
    const auto full = std::filesystem::file_size(path);
    // Cut mid-record (drop 4 bytes) and at a record boundary (drop
    // exactly two records): both must be rejected when the file is
    // opened, not records later mid-simulation.
    for (const std::uintmax_t cut :
         {full - 4, full - 2 * kTraceRecordBytes}) {
        std::filesystem::resize_file(path, cut);
        try {
            TraceFileReader reader(path);
            FAIL() << "truncated file (size " << cut
                   << ") must fail at open";
        } catch (const FatalError &err) {
            const std::string what = err.what();
            EXPECT_NE(what.find("truncated"), std::string::npos)
                << what;
            // Byte-accurate: the message carries the actual size.
            EXPECT_NE(what.find(std::to_string(cut)),
                      std::string::npos)
                << what;
        }
    }
}

TEST_F(TraceFileTest, TrailingGarbageIsFatalAtOpen)
{
    {
        TraceFileWriter writer(path);
        for (const auto &ref : sampleTrace())
            writer.write(ref);
    }
    const auto full = std::filesystem::file_size(path);
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const char junk[5] = {'j', 'u', 'n', 'k', '!'};
        ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f),
                  sizeof(junk));
        std::fclose(f);
    }
    try {
        TraceFileReader reader(path);
        FAIL() << "garbage-suffixed file must fail at open";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("trailing garbage"), std::string::npos)
            << what;
        // Byte-accurate: names the offset where the garbage starts.
        EXPECT_NE(what.find("offset " + std::to_string(full)),
                  std::string::npos)
            << what;
    }
}

TEST_F(TraceFileTest, HeaderCountMismatchIsFatalAtOpen)
{
    {
        TraceFileWriter writer(path);
        for (const auto &ref : sampleTrace())
            writer.write(ref);
    }
    // Forge the header to promise one extra record: the file is now
    // "truncated" relative to its own header.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        const auto count =
            static_cast<std::uint64_t>(sampleTrace().size()) + 1;
        unsigned char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<unsigned char>(count >> (8 * i));
        ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
        ASSERT_EQ(std::fwrite(bytes, 1, 8, f), 8u);
        std::fclose(f);
    }
    EXPECT_THROW(TraceFileReader reader(path), FatalError);
}

} // namespace
} // namespace gaas::trace
