/**
 * @file
 * Unit tests for util: bit operations, logging, the PRNG, the
 * fractional cycle accumulator, the structured error model, fault
 * injection, and atomic file publication.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "util/bitops.hh"
#include "util/env.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/file_io.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace gaas
{
namespace
{

TEST(BitOps, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitOps, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(BitOps, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(4), 0xfu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(bits(0xabcd, 4, 8), 0xbcu);
}

TEST(BitOps, AlignAndDivCeil)
{
    EXPECT_EQ(alignUp(0, 16), 0u);
    EXPECT_EQ(alignUp(1, 16), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(8, 4), 2u);
    EXPECT_EQ(divCeil(9, 4), 3u);
}

TEST(Types, WordConversions)
{
    EXPECT_EQ(wordsToBytes(kw(4)), 16u * 1024);
    EXPECT_EQ(bytesToWords(16 * 1024), kw(4));
    EXPECT_EQ(kPageWords, 4u * 1024);
    EXPECT_EQ(kPageBytes, 16u * 1024);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(gaas_fatal("boom"), FatalError);
    try {
        gaas_fatal("value was ", 42);
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("value was 42"),
                  std::string::npos);
    }
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345), b(12345), c(54321);
    bool all_equal = true;
    bool any_diff_c = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next64();
        const auto vb = b.next64();
        const auto vc = c.next64();
        all_equal = all_equal && (va == vb);
        any_diff_c = any_diff_c || (va != vc);
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_c);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(37), 37u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GeometricMeanApproximatelyCorrect)
{
    Rng rng(42);
    const double target = 12.0;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(target));
    const double mean = sum / n;
    EXPECT_NEAR(mean, target, 0.25);
}

TEST(Rng, GeometricDegenerateMeanIsOne)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextGeometric(0.5), 1u);
}

TEST(Rng, ParetoIndexInBounds)
{
    Rng rng(21);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(rng.nextParetoIndex(0.9, 1000), 1000u);
}

TEST(Rng, ParetoIsSkewedTowardZero)
{
    Rng rng(22);
    const int n = 100000;
    int low = 0;
    for (int i = 0; i < n; ++i) {
        if (rng.nextParetoIndex(1.0, 1 << 20) < 16)
            ++low;
    }
    // A heavy-tailed rank distribution puts a large share of mass on
    // the first few ranks.
    EXPECT_GT(low, n / 2);
}

TEST(Rng, ParetoSmallerAlphaHasHeavierTail)
{
    Rng a(31), b(31);
    const int n = 100000;
    std::uint64_t deep_light = 0, deep_heavy = 0;
    for (int i = 0; i < n; ++i) {
        if (a.nextParetoIndex(1.5, 1 << 20) > 4096)
            ++deep_light;
        if (b.nextParetoIndex(0.6, 1 << 20) > 4096)
            ++deep_heavy;
    }
    EXPECT_GT(deep_heavy, deep_light);
}

TEST(Rng, PickCumulative)
{
    Rng rng(17);
    const double cdf[] = {0.25, 0.75, 1.0};
    int counts[3] = {0, 0, 0};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.pickCumulative(cdf)];
    EXPECT_NEAR(counts[0], n * 0.25, n * 0.02);
    EXPECT_NEAR(counts[1], n * 0.50, n * 0.02);
    EXPECT_NEAR(counts[2], n * 0.25, n * 0.02);
}

TEST(FractionAccumulator, ZeroRate)
{
    FractionAccumulator acc(0.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(acc.tick(), 0u);
}

TEST(FractionAccumulator, IntegerRate)
{
    FractionAccumulator acc(3.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(acc.tick(), 3u);
}

TEST(FractionAccumulator, FractionalRateAveragesExactly)
{
    FractionAccumulator acc(0.238);
    std::uint64_t total = 0;
    const int n = 1000000;
    for (int i = 0; i < n; ++i) {
        const auto t = acc.tick();
        EXPECT_LE(t, 1u);
        total += t;
    }
    EXPECT_NEAR(static_cast<double>(total) / n, 0.238, 1e-4);
}

TEST(FractionAccumulator, MixedRate)
{
    FractionAccumulator acc(2.75);
    std::uint64_t total = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const auto t = acc.tick();
        EXPECT_GE(t, 2u);
        EXPECT_LE(t, 3u);
        total += t;
    }
    EXPECT_NEAR(static_cast<double>(total) / n, 2.75, 1e-4);
}

TEST(FractionAccumulator, DeterministicSequence)
{
    FractionAccumulator a(0.5), b(0.5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.tick(), b.tick());
}

TEST(Env, ParseU64AcceptsOnlyWholeDecimals)
{
    EXPECT_EQ(parseU64("0"), std::optional<std::uint64_t>{0});
    EXPECT_EQ(parseU64("42"), std::optional<std::uint64_t>{42});
    EXPECT_EQ(parseU64("18446744073709551615"),
              std::optional<std::uint64_t>{
                  std::numeric_limits<std::uint64_t>::max()});

    EXPECT_FALSE(parseU64(""));
    EXPECT_FALSE(parseU64("4x"));
    EXPECT_FALSE(parseU64("x4"));
    EXPECT_FALSE(parseU64("+4"));
    EXPECT_FALSE(parseU64("-4"));
    EXPECT_FALSE(parseU64(" 4"));
    EXPECT_FALSE(parseU64("4 "));
    EXPECT_FALSE(parseU64("0x10"));
    EXPECT_FALSE(parseU64("1e6"));
    EXPECT_FALSE(parseU64("18446744073709551616")); // overflow
}

TEST(Env, EnvU64FallsBackOnBadValues)
{
    const char *name = "GAAS_TEST_ENV_U64";
    ::unsetenv(name);
    EXPECT_EQ(envU64(name, 17), 17u);
    ::setenv(name, "", 1);
    EXPECT_EQ(envU64(name, 17), 17u);
    ::setenv(name, "23", 1);
    EXPECT_EQ(envU64(name, 17), 23u);
    ::setenv(name, "23x", 1);
    EXPECT_EQ(envU64(name, 17), 17u);
    ::setenv(name, "0", 1); // zero is rejected: knobs are positive
    EXPECT_EQ(envU64(name, 17), 17u);
    ::unsetenv(name);
}

TEST(Error, CodeNamesRoundTripAndAreStable)
{
    // The wire names are part of the public contract (journal
    // records, CSV "failed:<code>" cells); pin them literally.
    EXPECT_STREQ(errorCodeName(ErrorCode::Config), "config");
    EXPECT_STREQ(errorCodeName(ErrorCode::TraceIO), "trace-io");
    EXPECT_STREQ(errorCodeName(ErrorCode::StatsIO), "stats-io");
    EXPECT_STREQ(errorCodeName(ErrorCode::Watchdog), "watchdog");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");

    for (ErrorCode code :
         {ErrorCode::Config, ErrorCode::TraceIO, ErrorCode::StatsIO,
          ErrorCode::Watchdog, ErrorCode::Internal}) {
        ErrorCode parsed;
        ASSERT_TRUE(parseErrorCode(errorCodeName(code), parsed));
        EXPECT_EQ(parsed, code);
    }
    ErrorCode ignored;
    EXPECT_FALSE(parseErrorCode("no-such-code", ignored));
    EXPECT_FALSE(parseErrorCode("", ignored));
}

TEST(Error, GaasErrorFormatsLikeGaasFatal)
{
    try {
        gaas_error(ErrorCode::TraceIO, "went ", 42, " wrong");
        FAIL() << "gaas_error did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::TraceIO);
        EXPECT_STREQ(e.codeName(), "trace-io");
        const std::string what = e.what();
        EXPECT_NE(what.find("fatal: went 42 wrong"),
                  std::string::npos);
        EXPECT_NE(what.find("test_util.cc"), std::string::npos);
    }
    // SimError is a FatalError: existing handlers keep working.
    EXPECT_THROW(gaas_error(ErrorCode::Internal, "x"), FatalError);
}

/** Disarm on scope exit so a failing test cannot leak a fault. */
struct FaultGuard
{
    FaultGuard() = default;
    ~FaultGuard() { fault::reset(); }
};

TEST(Fault, DisarmedByDefaultAndAfterReset)
{
    FaultGuard guard;
    fault::reset();
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::shouldFail("file-write"));

    fault::configure("file-write:1");
    EXPECT_TRUE(fault::enabled());
    fault::reset();
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::shouldFail("file-write"));
}

TEST(Fault, NthHitSemantics)
{
    FaultGuard guard;
    fault::configure("pt:2,pt:4");
    EXPECT_FALSE(fault::shouldFail("pt")); // hit 1
    EXPECT_TRUE(fault::shouldFail("pt"));  // hit 2
    EXPECT_FALSE(fault::shouldFail("pt")); // hit 3
    EXPECT_TRUE(fault::shouldFail("pt"));  // hit 4
    EXPECT_FALSE(fault::shouldFail("pt")); // hit 5
    // Another point has its own counter and no armed entries.
    EXPECT_FALSE(fault::shouldFail("other"));

    // configure() replaces the spec and zeroes the counters.
    fault::configure("pt:1");
    EXPECT_TRUE(fault::shouldFail("pt"));
    EXPECT_FALSE(fault::shouldFail("pt"));
}

TEST(Fault, StarFailsEveryHit)
{
    FaultGuard guard;
    fault::configure("pt:*");
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(fault::shouldFail("pt"));
    EXPECT_FALSE(fault::shouldFail("other"));
}

TEST(Fault, MalformedSpecIsAConfigError)
{
    FaultGuard guard;
    for (const char *bad :
         {"nocolon", "pt:", "pt:0", "pt:x", "pt:1x", ":3",
          "pt:-2"}) {
        SCOPED_TRACE(bad);
        try {
            fault::configure(bad);
            FAIL() << "spec accepted";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), ErrorCode::Config);
        }
        // A rejected spec must not leave anything half-armed.
        EXPECT_FALSE(fault::enabled());
    }
    // The empty spec simply disarms.
    fault::configure("");
    EXPECT_FALSE(fault::enabled());
}

/** A fresh scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "fileio-" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(FileIo, WriteFileAtomicPublishesAllOrNothing)
{
    const std::string dir = scratchDir("atomic");
    const std::string path = dir + "/out.txt";

    std::string error;
    ASSERT_TRUE(util::writeFileAtomic(path, "first\n", &error))
        << error;
    EXPECT_EQ(slurp(path), "first\n");
    // No temp residue after success.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    // A failed write leaves the previous content untouched and
    // cleans up its temp file.
    FaultGuard guard;
    fault::configure("file-write:1");
    EXPECT_FALSE(util::writeFileAtomic(path, "second\n", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(slurp(path), "first\n");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(FileIo, WriteFileAtomicReportsUnreachablePaths)
{
    const std::string dir = scratchDir("noent");
    std::string error;
    EXPECT_FALSE(util::writeFileAtomic(dir + "/no/such/dir/x", "a",
                                       &error));
    EXPECT_FALSE(error.empty());
}

TEST(FileIo, RetrySucceedsAfterTransientFault)
{
    const std::string dir = scratchDir("retry");
    const std::string path = dir + "/out.txt";

    // First attempt fails (injected), second succeeds: the bounded
    // retry absorbs the transient.
    FaultGuard guard;
    fault::configure("file-write:1");
    std::string error;
    EXPECT_TRUE(util::writeFileAtomicRetry(path, "ok\n", &error));
    EXPECT_EQ(slurp(path), "ok\n");

    // Every attempt failing gives up with the error set.
    fault::configure("file-write:*");
    EXPECT_FALSE(
        util::writeFileAtomicRetry(path, "nope\n", &error, 3));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(slurp(path), "ok\n");
}

} // namespace
} // namespace gaas
