/**
 * @file
 * benchspeed: the perf-trajectory instrument.
 *
 * Times one pinned Fig. 6-shaped ladder (7 L2 sizes x 4
 * organisations, the paper's heaviest sweep) twice in one process --
 * first with the trace arena disabled (per-job generators, the
 * pre-arena behaviour), then with it enabled -- and writes the
 * comparison to a JSON file (`BENCH_6.json` by default) so the
 * repository's performance can be tracked run over run:
 *
 *   wall seconds and refs/s for both modes, a per-phase breakdown
 *   (refs/s per L2 organisation of the ladder, from the sweep's
 *   per-job telemetry), the arena's stream hit rate / generation
 *   seconds / byte footprint, and the end-to-end speedup.
 *
 * The two modes must also be *correct* relative to each other: every
 * point's full stats dump is byte-compared across modes and any
 * difference is a hard failure.  `--smoke` shrinks the budgets to CI
 * scale and asserts only the invariants (arena reuse happened, modes
 * byte-identical) -- never absolute times.  `--floor REFS` turns the
 * arena-on refs/s into a hard assertion: below the floor the exit
 * status is nonzero, so the ctest `perfsmoke` label catches a silent
 * hot-path regression (the floor is generous -- a fraction of the
 * recorded rate -- so host noise does not flake the suite).
 *
 * `--sample` switches to the sampled-simulation benchmark instead:
 * the same ladder runs once at full detail and once under the
 * SMARTS-style sampling controller (core/sampling.hh), every sampled
 * point's CPI is checked against its own 95% confidence interval
 * around the full-detail value (a hard failure outside it, except in
 * --smoke whose intervals are too few to promise coverage), and the
 * wall-clock/speedup comparison goes to `BENCH_7.json` -- the
 * sampled ladder's refs/s recorded next to the full-detail floor.
 *
 * `--mproc` benchmarks the multi-process sweep executor instead:
 * the same ladder runs once on the in-process thread pool and once
 * across forked worker processes (proc/executor.hh, same worker
 * count), every point's stats dump is byte-compared across the two
 * (the executor's bit-identity contract), and the wall-clock
 * comparison -- worker count, respawns, requeues, and the process
 * mode's overhead percentage -- goes to `BENCH_8.json`.
 * `--overhead PCT` makes that overhead a hard assertion, the
 * perfsmoke guard that cross-process sharding stays cheap.
 *
 * `--stream` benchmarks trace-file ingestion instead: it encodes a
 * multi-gigareference workload into v3 trace files (tracepack's
 * format, one file per process), measures the raw streaming decode
 * rate, then simulates one pinned configuration twice -- replaying
 * the files from the in-memory arena and through the bounded-memory
 * StreamSource -- byte-compares the two stats dumps, and writes
 * encode/drain/simulate throughput to `BENCH_9.json`.  `--grefs G`
 * sizes the workload in billions of references (default 2.5, the
 * paper's regime); `--ratio R` makes the streaming-vs-arena
 * simulation throughput ratio a hard assertion (the
 * perfsmoke.stream-floor guard).
 *
 * Every document also records `calibration_refs_per_second` -- the
 * rate of one pinned single-thread synthetic-generator drain -- and
 * each mode's `machine_relative` rate (mode refs/s divided by the
 * calibration), so numbers from different hosts compare directly
 * (cf. BENCH_5 vs BENCH_6, recorded on different machines).
 * `floor_refs_per_second` only appears when --floor was actually
 * enforced.
 *
 * Usage: benchspeed [--smoke] [--sample | --mproc | --stream]
 *                   [--out FILE] [--floor REFS] [--overhead PCT]
 *                   [--grefs G] [--ratio R]
 */

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/sampling.hh"
#include "core/stats_dump.hh"
#include "core/sweep.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "proc/executor.hh"
#include "synth/suite.hh"
#include "trace/arena.hh"
#include "trace/stream.hh"
#include "trace/v3.hh"
#include "util/file_io.hh"

namespace
{

using namespace gaas;

/** The ladder's organisation axis, in emission order: point i
 *  belongs to organisation i % kOrgCount.  These are the "phases" of
 *  the per-phase breakdown. */
constexpr const char *kOrgNames[] = {"unified-1w", "unified-2w",
                                     "split-1w", "split-2w"};
constexpr std::size_t kOrgCount =
    sizeof(kOrgNames) / sizeof(kOrgNames[0]);

/** The pinned ladder: Fig. 6's 28 configurations. */
std::vector<core::SweepJob>
ladder(Count instructions, Count warmup, unsigned mp_level)
{
    struct Org
    {
        core::L2Org org;
        unsigned assoc;
        Cycles accessTime;
    };
    const Org orgs[kOrgCount] = {
        {core::L2Org::Unified, 1, 6},
        {core::L2Org::Unified, 2, 7},
        {core::L2Org::LogicalSplit, 1, 6},
        {core::L2Org::LogicalSplit, 2, 7},
    };
    std::vector<core::SweepJob> jobs;
    for (std::uint64_t size = 16 * 1024; size <= 1024 * 1024;
         size *= 2) {
        for (std::size_t o = 0; o < kOrgCount; ++o) {
            core::SweepJob job;
            job.config = core::afterWritePolicy();
            job.config.name = "l2-" +
                              std::to_string(size / 1024) + "k-" +
                              kOrgNames[o];
            job.config.l2Org = orgs[o].org;
            job.config.l2.cache.sizeWords = size;
            job.config.l2.cache.assoc = orgs[o].assoc;
            job.config.l2.accessTime = orgs[o].accessTime;
            job.mpLevel = mp_level;
            job.instructions = instructions;
            job.warmup = warmup;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/** One organisation's slice of a mode run. */
struct PhaseStat
{
    Count refs = 0;          //!< measured references simulated
    double simSeconds = 0.0; //!< sum of per-job sim seconds

    double refsPerSecond() const
    {
        return simSeconds > 0.0
                   ? static_cast<double>(refs) / simSeconds
                   : 0.0;
    }
};

struct ModeRun
{
    double wallSeconds = 0.0;
    double refsPerSecond = 0.0;
    core::SweepStats stats;
    std::vector<std::string> dumps; //!< per-point stats text
    std::vector<core::SimResult> results; //!< per-point results
    std::array<PhaseStat, kOrgCount> phases{};
};

ModeRun
runMode(const std::vector<core::SweepJob> &jobs, bool arena_on,
        unsigned mproc_workers = 0)
{
    if (arena_on)
        ::unsetenv("GAAS_BENCH_ARENA");
    else
        ::setenv("GAAS_BENCH_ARENA", "0", 1);

    ModeRun run;
    std::vector<core::SweepOutcome> outcomes;
    if (mproc_workers > 0) {
        proc::MprocOptions opts;
        opts.workers = mproc_workers;
        outcomes = proc::runSweepMproc(jobs, opts, &run.stats);
    } else {
        outcomes = core::runSweepOutcomes(jobs, 0, &run.stats);
    }
    run.wallSeconds = run.stats.wallSeconds;
    run.refsPerSecond = run.stats.refsPerSecond();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto &out = outcomes[i];
        if (out.status == core::PointStatus::Failed) {
            std::cerr << "benchspeed: point '"
                      << out.result.configName << "' failed: "
                      << out.error << "\n";
            std::exit(1);
        }
        PhaseStat &phase = run.phases[i % kOrgCount];
        phase.refs += out.result.references();
        if (i < run.stats.perJob.size())
            phase.simSeconds += run.stats.perJob[i].simSeconds;
        std::ostringstream os;
        core::dumpStats(out.result, os);
        run.dumps.push_back(os.str());
        run.results.push_back(out.result);
    }
    return run;
}

obs::JsonValue
num(double v)
{
    return obs::JsonValue::number(v);
}

/**
 * The machine yardstick: drain one pinned single-thread synthetic
 * benchmark (suite entry 0, 2M instructions) and return its refs/s.
 * The workload is deterministic and identical on every host, so
 * `mode rate / calibration rate` compares across machines where the
 * absolute rates do not.
 */
double
calibrationRefsPerSecond()
{
    synth::BenchmarkSpec spec = synth::defaultSuite()[0];
    spec.simInstructions = 2'000'000;
    auto src = synth::makeBenchmark(spec);
    constexpr std::size_t kBatch = 1u << 14;
    std::vector<trace::MemRef> buf(kBatch);
    std::uint64_t n = 0;
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        const std::size_t got = src->nextBatch(buf.data(), kBatch);
        n += got;
        if (got < kBatch)
            break;
    }
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return secs > 0.0 ? static_cast<double>(n) / secs : 0.0;
}

/**
 * Common rate-context members of every document: the enforced floor
 * (only when one was actually enforced -- an unset floor used to be
 * recorded as a misleading 0) and the calibration rate.
 */
void
emitRateContext(obs::JsonValue &doc, double floor_refs,
                double calibration)
{
    if (floor_refs > 0.0)
        doc.members.emplace_back("floor_refs_per_second",
                                 num(floor_refs));
    doc.members.emplace_back("calibration_refs_per_second",
                             num(calibration));
}

/** @return refs/s scaled by the calibration yardstick (0-safe). */
double
machineRelative(double refs_per_second, double calibration)
{
    return calibration > 0.0 ? refs_per_second / calibration : 0.0;
}

/** Peak resident set size (VmHWM) in KiB, or 0 if unavailable. */
std::uint64_t
peakRssKb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
    return 0;
}

/** The per-phase breakdown of one mode, as a JSON array. */
obs::JsonValue
phasesJson(const ModeRun &run, std::size_t points_per_phase)
{
    obs::JsonValue arr = obs::JsonValue::array();
    for (std::size_t o = 0; o < kOrgCount; ++o) {
        const PhaseStat &p = run.phases[o];
        obs::JsonValue one = obs::JsonValue::object();
        one.members.emplace_back(
            "organisation", obs::JsonValue::string(kOrgNames[o]));
        one.members.emplace_back(
            "points", num(static_cast<double>(points_per_phase)));
        one.members.emplace_back(
            "references", num(static_cast<double>(p.refs)));
        one.members.emplace_back("sim_seconds",
                                 num(p.simSeconds));
        one.members.emplace_back("refs_per_second",
                                 num(p.refsPerSecond()));
        arr.items.push_back(std::move(one));
    }
    return arr;
}

/**
 * The --sample benchmark: full-detail vs sampled ladder, CPI-vs-CI
 * cross-check, BENCH_7.json.  Returns the process exit code.
 */
int
runSampleBench(bool smoke, std::string outPath, double floorRefs,
               double calibration)
{
    if (outPath.empty())
        outPath = "BENCH_7.json";

    // The real fig6 budget (Sweep::addScaled factor 4 over the
    // 4M-instruction default): the speedup claim is about the
    // figure the paper reproduction actually runs.
    const Count instructions = smoke ? 200'000 : 16'000'000;
    const Count warmup = smoke ? 20'000 : 8'000'000;
    const unsigned mp = smoke ? 4 : 8;
    auto jobs = ladder(instructions, warmup, mp);

    core::SamplingConfig plan;
    plan.enabled = true;
    if (smoke) {
        plan.measureInstructions = 2'000;
        plan.headInstructions = 4'000;
        plan.warmInstructions = 6'000;
        plan.minIntervals = 4;
        plan.maxIntervals = 8;
    }

    std::cout << "benchspeed --sample: " << jobs.size()
              << "-point fig6 ladder, " << instructions
              << " instructions + " << warmup << " warmup, mp "
              << mp << ", " << core::sweepWorkers()
              << " worker(s)\n";

    const ModeRun full = runMode(jobs, true);
    std::cout << "  full detail: " << full.wallSeconds
              << " s wall, " << full.refsPerSecond << " refs/s\n";

    for (auto &job : jobs)
        job.sampling = plan;
    const ModeRun sampled = runMode(jobs, true);
    std::cout << "  sampled:     " << sampled.wallSeconds
              << " s wall, " << sampled.refsPerSecond
              << " measured refs/s\n";

    int rc = 0;
    std::size_t inside = 0, fallbacks = 0;
    obs::JsonValue pointsJson = obs::JsonValue::array();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const core::SimResult &f = full.results[i];
        const core::SimResult &s = sampled.results[i];
        const double err = s.sampling.cpiMean - f.cpi();
        const bool within =
            std::abs(err) <= s.sampling.cpiHalfWidth;
        if (!s.sampling.enabled()) {
            std::cerr << "benchspeed: FAIL: point '" << f.configName
                      << "' did not run sampled\n";
            rc = 1;
        } else if (s.sampling.intervals == 0) {
            ++fallbacks; // exact full-detail fallback: trivially ok
            ++inside;
        } else if (within) {
            ++inside;
        } else if (!smoke) {
            std::cerr << "benchspeed: FAIL: point '" << f.configName
                      << "' full-detail cpi " << f.cpi()
                      << " outside sampled " << s.sampling.cpiMean
                      << " +/- " << s.sampling.cpiHalfWidth << "\n";
            rc = 1;
        }
        obs::JsonValue one = obs::JsonValue::object();
        one.members.emplace_back(
            "config", obs::JsonValue::string(f.configName));
        one.members.emplace_back("full_cpi", num(f.cpi()));
        one.members.emplace_back("sampled_cpi",
                                 num(s.sampling.cpiMean));
        one.members.emplace_back("half_width",
                                 num(s.sampling.cpiHalfWidth));
        one.members.emplace_back(
            "intervals",
            num(static_cast<double>(s.sampling.intervals)));
        one.members.emplace_back("within_ci", num(within ? 1 : 0));
        pointsJson.items.push_back(std::move(one));
    }
    std::cout << "  within CI: " << inside << "/" << jobs.size()
              << " (" << fallbacks << " full-detail fallback(s))\n";

    if (floorRefs > 0.0 && full.refsPerSecond < floorRefs) {
        std::cerr << "benchspeed: FAIL: full-detail rate "
                  << full.refsPerSecond
                  << " refs/s is below the floor " << floorRefs
                  << " refs/s\n";
        rc = 1;
    }

    const double speedup =
        sampled.wallSeconds > 0.0
            ? full.wallSeconds / sampled.wallSeconds
            : 0.0;
    if (!smoke && speedup < 10.0) {
        std::cerr << "benchspeed: FAIL: sampled ladder speedup "
                  << speedup << "x is below the 10x target\n";
        rc = 1;
    }

    obs::JsonValue doc = obs::JsonValue::object();
    doc.members.emplace_back(
        "benchmark",
        obs::JsonValue::string("fig6-ladder-sampled"));
    doc.members.emplace_back("smoke", num(smoke ? 1 : 0));
    doc.members.emplace_back(
        "points", num(static_cast<double>(jobs.size())));
    doc.members.emplace_back(
        "instructions_per_point",
        num(static_cast<double>(instructions)));
    doc.members.emplace_back(
        "warmup_per_point", num(static_cast<double>(warmup)));
    doc.members.emplace_back("mp_level",
                             num(static_cast<double>(mp)));
    doc.members.emplace_back(
        "workers", num(static_cast<double>(full.stats.workers)));
    emitRateContext(doc, floorRefs, calibration);

    obs::JsonValue fullJson = obs::JsonValue::object();
    fullJson.members.emplace_back("wall_seconds",
                                  num(full.wallSeconds));
    fullJson.members.emplace_back("refs_per_second",
                                  num(full.refsPerSecond));
    fullJson.members.emplace_back(
        "machine_relative",
        num(machineRelative(full.refsPerSecond, calibration)));
    doc.members.emplace_back("full_detail", std::move(fullJson));

    obs::JsonValue sampJson = obs::JsonValue::object();
    sampJson.members.emplace_back("wall_seconds",
                                  num(sampled.wallSeconds));
    sampJson.members.emplace_back("measured_refs_per_second",
                                  num(sampled.refsPerSecond));
    sampJson.members.emplace_back(
        "measure_instructions",
        num(static_cast<double>(plan.measureInstructions)));
    sampJson.members.emplace_back(
        "warm_instructions",
        num(static_cast<double>(plan.warmInstructions)));
    sampJson.members.emplace_back("target_rel_half_width",
                                  num(plan.targetRelHalfWidth));
    sampJson.members.emplace_back(
        "points_within_ci", num(static_cast<double>(inside)));
    sampJson.members.emplace_back(
        "fallback_points", num(static_cast<double>(fallbacks)));
    doc.members.emplace_back("sampled", std::move(sampJson));

    doc.members.emplace_back("per_point", std::move(pointsJson));
    doc.members.emplace_back("speedup", num(speedup));

    std::string error;
    if (!util::writeFileAtomicRetry(
            outPath, obs::writeJsonString(doc) + "\n", &error)) {
        std::cerr << "benchspeed: cannot write " << outPath << ": "
                  << error << "\n";
        rc = 1;
    } else {
        std::cout << "  speedup " << speedup << "x -> " << outPath
                  << "\n";
    }
    return rc;
}

/**
 * The --mproc benchmark: thread pool vs forked worker processes on
 * the pinned ladder, byte-identity cross-check, BENCH_8.json.
 * Returns the process exit code.
 */
int
runMprocBench(bool smoke, std::string outPath, double floorRefs,
              double maxOverheadPct, double calibration)
{
    if (outPath.empty())
        outPath = "BENCH_8.json";

    const Count instructions = smoke ? 20'000 : 1'000'000;
    const Count warmup = smoke ? 5'000 : 500'000;
    const unsigned mp = smoke ? 4 : 8;
    const auto jobs = ladder(instructions, warmup, mp);
    const unsigned workers = core::sweepWorkers();

    std::cout << "benchspeed --mproc: " << jobs.size()
              << "-point fig6 ladder, " << instructions
              << " instructions + " << warmup << " warmup, mp "
              << mp << ", " << workers << " worker(s)\n";

    // An untimed warmup pass materializes every arena stream (and
    // faults in the code paths), so both timed modes below replay
    // the same warm streams and the overhead number isolates the
    // process machinery (fork, pipes, result re-encoding) -- which
    // is exactly what the overhead assertion is about.
    (void)runMode(jobs, true);
    const ModeRun threads = runMode(jobs, true);
    std::cout << "  threads:   " << threads.wallSeconds
              << " s wall, " << threads.refsPerSecond
              << " refs/s\n";
    const ModeRun procs = runMode(jobs, true, workers);
    std::cout << "  processes: " << procs.wallSeconds
              << " s wall, " << procs.refsPerSecond << " refs/s, "
              << procs.stats.workerRespawns << " respawn(s), "
              << procs.stats.requeuedJobs << " requeue(s)\n";

    int rc = 0;
    if (!procs.stats.mproc) {
        std::cerr << "benchspeed: FAIL: the process run did not use "
                     "the multi-process executor\n";
        rc = 1;
    }
    if (threads.dumps != procs.dumps) {
        for (std::size_t i = 0; i < threads.dumps.size(); ++i) {
            if (threads.dumps[i] != procs.dumps[i])
                std::cerr << "benchspeed: FAIL: point " << i << " ('"
                          << jobs[i].config.name
                          << "') differs between threads and "
                             "processes\n";
        }
        rc = 1;
    }
    if (procs.stats.workerRespawns != 0 ||
        procs.stats.requeuedJobs != 0) {
        std::cerr << "benchspeed: FAIL: fault-free ladder respawned "
                  << procs.stats.workerRespawns
                  << " worker(s) / requeued "
                  << procs.stats.requeuedJobs << " job(s)\n";
        rc = 1;
    }
    if (floorRefs > 0.0 && procs.refsPerSecond < floorRefs) {
        std::cerr << "benchspeed: FAIL: process-mode rate "
                  << procs.refsPerSecond
                  << " refs/s is below the floor " << floorRefs
                  << " refs/s\n";
        rc = 1;
    }

    const double overheadPct =
        threads.wallSeconds > 0.0
            ? (procs.wallSeconds - threads.wallSeconds) /
                  threads.wallSeconds * 100.0
            : 0.0;
    std::cout << "  overhead: " << overheadPct << " %\n";
    if (maxOverheadPct > 0.0 && overheadPct > maxOverheadPct) {
        std::cerr << "benchspeed: FAIL: multi-process overhead "
                  << overheadPct << " % exceeds the "
                  << maxOverheadPct << " % budget\n";
        rc = 1;
    }

    obs::JsonValue doc = obs::JsonValue::object();
    doc.members.emplace_back(
        "benchmark", obs::JsonValue::string("fig6-ladder-mproc"));
    doc.members.emplace_back("smoke", num(smoke ? 1 : 0));
    doc.members.emplace_back(
        "points", num(static_cast<double>(jobs.size())));
    doc.members.emplace_back(
        "instructions_per_point",
        num(static_cast<double>(instructions)));
    doc.members.emplace_back(
        "warmup_per_point", num(static_cast<double>(warmup)));
    doc.members.emplace_back("mp_level",
                             num(static_cast<double>(mp)));
    doc.members.emplace_back("workers",
                             num(static_cast<double>(workers)));
    doc.members.emplace_back("max_overhead_pct",
                             num(maxOverheadPct));
    emitRateContext(doc, floorRefs, calibration);

    obs::JsonValue thr = obs::JsonValue::object();
    thr.members.emplace_back("wall_seconds",
                             num(threads.wallSeconds));
    thr.members.emplace_back("refs_per_second",
                             num(threads.refsPerSecond));
    thr.members.emplace_back(
        "machine_relative",
        num(machineRelative(threads.refsPerSecond, calibration)));
    doc.members.emplace_back("threads", std::move(thr));

    obs::JsonValue prc = obs::JsonValue::object();
    prc.members.emplace_back("wall_seconds",
                             num(procs.wallSeconds));
    prc.members.emplace_back("refs_per_second",
                             num(procs.refsPerSecond));
    prc.members.emplace_back(
        "machine_relative",
        num(machineRelative(procs.refsPerSecond, calibration)));
    prc.members.emplace_back(
        "worker_processes",
        num(static_cast<double>(procs.stats.workers)));
    prc.members.emplace_back(
        "worker_respawns",
        num(static_cast<double>(procs.stats.workerRespawns)));
    prc.members.emplace_back(
        "requeued_jobs",
        num(static_cast<double>(procs.stats.requeuedJobs)));
    doc.members.emplace_back("mproc", std::move(prc));

    doc.members.emplace_back("overhead_pct", num(overheadPct));

    std::string error;
    if (!util::writeFileAtomicRetry(
            outPath, obs::writeJsonString(doc) + "\n", &error)) {
        std::cerr << "benchspeed: cannot write " << outPath << ": "
                  << error << "\n";
        rc = 1;
    } else {
        std::cout << "  overhead " << overheadPct << " % -> "
                  << outPath << "\n";
    }
    return rc;
}

/**
 * The --stream benchmark: encode a multi-gigareference workload
 * into v3 trace files, measure raw streaming decode, then simulate
 * one pinned configuration from the arena and through StreamSource,
 * byte-compare, and write BENCH_9.json.  Returns the process exit
 * code.
 */
int
runStreamBench(bool smoke, std::string outPath, double grefs,
               double ratioFloor, double calibration)
{
    if (outPath.empty())
        outPath = "BENCH_9.json";

    // One file per process of the multiprogramming workload.  File
    // sizes follow the scheduler's instruction shares (speed-
    // proportional, like Workload::standard's refHint) with 10%
    // slack, so most files last the whole run without wrapping --
    // though wrapping would be bit-identical too (LoopSource).
    const unsigned files = smoke ? 2 : 8;
    const double targetRefs = smoke ? 4.0e6 : grefs * 1e9;
    auto specs = synth::workloadSpecs(files);

    double invSum = 0.0;
    double minRpi = 10.0;
    for (const auto &s : specs) {
        invSum += 1.0 / s.baseCpi;
        minRpi =
            std::min(minRpi, 1.0 + s.loadFrac + s.storeFrac);
    }
    // Simulation budget sized so the measured run consumes at least
    // targetRefs references even if every instruction landed in the
    // lowest-refs-per-instruction process (2% margin on top).
    const Count totalInstr =
        static_cast<Count>(targetRefs / minRpi * 1.02);

    std::cout << "benchspeed --stream: " << files
              << " trace file(s), target "
              << static_cast<std::uint64_t>(targetRefs)
              << " references, " << totalInstr
              << " simulated instructions\n";

    // Encode phase: synth generator -> v3, one file per process.
    std::vector<std::string> paths;
    std::uint64_t encRecords = 0;
    std::uint64_t encBytes = 0;
    const auto encStart = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < files; ++i) {
        synth::BenchmarkSpec spec = specs[i];
        const double share = (1.0 / spec.baseCpi) / invSum;
        spec.simInstructions = static_cast<Count>(
            share * static_cast<double>(totalInstr) * 1.1);
        const std::string path = "benchspeed-stream-" +
                                 std::to_string(i) + ".v3";
        auto src = synth::makeBenchmark(spec);
        trace::TraceV3Writer writer(path);
        encRecords += writer.writeAll(*src);
        writer.close();
        if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
            const std::int64_t sz = util::fileSizeBytes(f);
            encBytes += sz > 0 ? static_cast<std::uint64_t>(sz) : 0;
            std::fclose(f);
        }
        paths.push_back(path);
    }
    const double encSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - encStart)
            .count();
    const double encRate =
        encSeconds > 0.0
            ? static_cast<double>(encRecords) / encSeconds
            : 0.0;
    std::cout << "  encode: " << encRecords << " records, "
              << encBytes << " bytes ("
              << (encRecords
                      ? static_cast<double>(encBytes) /
                            static_cast<double>(encRecords)
                      : 0.0)
              << " B/record) in " << encSeconds << " s = "
              << encRate << " refs/s\n";

    // Drain phase: raw streaming decode rate of the first file
    // (packed batches, default memory ceiling), no simulator.
    double drainRate = 0.0;
    std::size_t drainSlots = 0;
    std::size_t drainBytes = 0;
    {
        trace::StreamSource drain(paths[0]);
        drainSlots = drain.slotCount();
        drainBytes = drain.bufferBytes();
        constexpr std::size_t kBatch = 1u << 14;
        std::vector<std::uint32_t> buf(kBatch);
        std::uint64_t n = 0;
        const auto start = std::chrono::steady_clock::now();
        for (;;) {
            const std::size_t got =
                drain.nextBatchPacked(buf.data(), kBatch);
            if (got == trace::TraceSource::kNoPacked) {
                std::cerr << "benchspeed: FAIL: synth-written v3 "
                             "file is not packable\n";
                return 1;
            }
            n += got;
            if (got < kBatch)
                break;
        }
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        drainRate = secs > 0.0
                        ? static_cast<double>(n) / secs
                        : 0.0;
        std::cout << "  drain:  " << n << " records at "
                  << drainRate << " refs/s (" << drainSlots
                  << " slots, " << drainBytes
                  << " buffer bytes)\n";
    }

    // Simulate phase: one pinned fig6 configuration over the trace
    // files, streamed first (so the RSS high-water mark below is
    // the bounded-memory pipeline's, not the arena's), then from
    // the in-memory arena.
    core::SweepJob job;
    job.config = core::afterWritePolicy();
    job.config.name = "l2-256k-unified-1w";
    job.config.l2Org = core::L2Org::Unified;
    job.config.l2.cache.sizeWords = 256 * 1024;
    job.config.l2.cache.assoc = 1;
    job.config.l2.accessTime = 6;
    job.instructions = totalInstr;
    job.warmup = 0;
    job.traceFiles = paths;

    job.traceStreaming = true;
    const ModeRun stream = runMode({job}, true);
    const std::uint64_t streamRssKb = peakRssKb();
    std::cout << "  stream: " << stream.wallSeconds << " s wall, "
              << stream.refsPerSecond << " refs/s (peak RSS "
              << streamRssKb << " KiB)\n";

    job.traceStreaming = false;
    const ModeRun arena = runMode({job}, true);
    std::cout << "  arena:  " << arena.wallSeconds << " s wall, "
              << arena.refsPerSecond << " refs/s\n";

    int rc = 0;
    if (stream.dumps != arena.dumps) {
        std::cerr << "benchspeed: FAIL: streamed and in-memory "
                     "replay produced different stats dumps\n";
        rc = 1;
    }
    const auto streamRefs =
        static_cast<double>(stream.results[0].references());
    if (!smoke && streamRefs < targetRefs) {
        std::cerr << "benchspeed: FAIL: streamed run consumed "
                  << streamRefs << " references, below the "
                  << targetRefs << " target\n";
        rc = 1;
    }
    const double ratio =
        arena.refsPerSecond > 0.0
            ? stream.refsPerSecond / arena.refsPerSecond
            : 0.0;
    std::cout << "  streaming sustains " << ratio * 100.0
              << " % of arena replay\n";
    if (ratioFloor > 0.0 && ratio < ratioFloor) {
        std::cerr << "benchspeed: FAIL: streaming/arena ratio "
                  << ratio << " is below the floor " << ratioFloor
                  << "\n";
        rc = 1;
    }

    for (const std::string &path : paths)
        std::remove(path.c_str());

    obs::JsonValue doc = obs::JsonValue::object();
    doc.members.emplace_back(
        "benchmark", obs::JsonValue::string("trace-stream"));
    doc.members.emplace_back("smoke", num(smoke ? 1 : 0));
    doc.members.emplace_back("files",
                             num(static_cast<double>(files)));
    doc.members.emplace_back("target_references",
                             num(targetRefs));
    doc.members.emplace_back(
        "instructions", num(static_cast<double>(totalInstr)));
    if (ratioFloor > 0.0)
        doc.members.emplace_back("ratio_floor", num(ratioFloor));
    emitRateContext(doc, 0.0, calibration);

    obs::JsonValue enc = obs::JsonValue::object();
    enc.members.emplace_back(
        "records", num(static_cast<double>(encRecords)));
    enc.members.emplace_back("bytes",
                             num(static_cast<double>(encBytes)));
    enc.members.emplace_back(
        "bytes_per_record",
        num(encRecords ? static_cast<double>(encBytes) /
                             static_cast<double>(encRecords)
                       : 0.0));
    enc.members.emplace_back("seconds", num(encSeconds));
    enc.members.emplace_back("refs_per_second", num(encRate));
    doc.members.emplace_back("encode", std::move(enc));

    obs::JsonValue drn = obs::JsonValue::object();
    drn.members.emplace_back("refs_per_second", num(drainRate));
    drn.members.emplace_back(
        "machine_relative",
        num(machineRelative(drainRate, calibration)));
    drn.members.emplace_back(
        "slots", num(static_cast<double>(drainSlots)));
    drn.members.emplace_back(
        "buffer_bytes", num(static_cast<double>(drainBytes)));
    doc.members.emplace_back("drain", std::move(drn));

    obs::JsonValue sim = obs::JsonValue::object();
    sim.members.emplace_back(
        "config", obs::JsonValue::string(job.config.name));
    sim.members.emplace_back("references", num(streamRefs));

    obs::JsonValue str = obs::JsonValue::object();
    str.members.emplace_back("wall_seconds",
                             num(stream.wallSeconds));
    str.members.emplace_back("refs_per_second",
                             num(stream.refsPerSecond));
    str.members.emplace_back(
        "machine_relative",
        num(machineRelative(stream.refsPerSecond, calibration)));
    str.members.emplace_back(
        "peak_rss_kb", num(static_cast<double>(streamRssKb)));
    sim.members.emplace_back("stream", std::move(str));

    obs::JsonValue arn = obs::JsonValue::object();
    arn.members.emplace_back("wall_seconds",
                             num(arena.wallSeconds));
    arn.members.emplace_back("refs_per_second",
                             num(arena.refsPerSecond));
    arn.members.emplace_back(
        "machine_relative",
        num(machineRelative(arena.refsPerSecond, calibration)));
    sim.members.emplace_back("arena", std::move(arn));

    sim.members.emplace_back("stream_to_arena_ratio", num(ratio));
    doc.members.emplace_back("simulate", std::move(sim));

    std::string error;
    if (!util::writeFileAtomicRetry(
            outPath, obs::writeJsonString(doc) + "\n", &error)) {
        std::cerr << "benchspeed: cannot write " << outPath << ": "
                  << error << "\n";
        rc = 1;
    } else {
        std::cout << "  ratio " << ratio << " -> " << outPath
                  << "\n";
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool sample = false;
    bool mproc = false;
    bool stream = false;
    std::string outPath;
    double floorRefs = 0.0;
    double overheadPct = 0.0;
    double grefs = 2.5;
    double ratioFloor = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--sample") == 0) {
            sample = true;
        } else if (std::strcmp(argv[i], "--mproc") == 0) {
            mproc = true;
        } else if (std::strcmp(argv[i], "--stream") == 0) {
            stream = true;
        } else if (std::strcmp(argv[i], "--grefs") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            grefs = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || grefs <= 0.0) {
                std::cerr << "benchspeed: --grefs needs a positive "
                             "billions-of-references value, got '"
                          << argv[i] << "'\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--ratio") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            ratioFloor = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' ||
                ratioFloor <= 0.0 || ratioFloor > 1.0) {
                std::cerr << "benchspeed: --ratio needs a value in "
                             "(0, 1], got '"
                          << argv[i] << "'\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--overhead") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            overheadPct = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' ||
                overheadPct <= 0.0) {
                std::cerr << "benchspeed: --overhead needs a "
                             "positive percentage, got '"
                          << argv[i] << "'\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--floor") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            floorRefs = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' ||
                floorRefs <= 0.0) {
                std::cerr << "benchspeed: --floor needs a positive "
                             "refs/s value, got '"
                          << argv[i] << "'\n";
                return 2;
            }
        } else {
            std::cerr << "usage: benchspeed [--smoke] "
                         "[--sample | --mproc | --stream] "
                         "[--out FILE] [--floor REFS] "
                         "[--overhead PCT] [--grefs G] "
                         "[--ratio R]\n";
            return 2;
        }
    }
    const double calibration = calibrationRefsPerSecond();
    if (sample)
        return runSampleBench(smoke, outPath, floorRefs,
                              calibration);
    if (mproc)
        return runMprocBench(smoke, outPath, floorRefs, overheadPct,
                             calibration);
    if (stream)
        return runStreamBench(smoke, outPath, grefs, ratioFloor,
                              calibration);
    if (outPath.empty())
        outPath = "BENCH_6.json";

    // Pinned budgets: independent of the GAAS_BENCH_* knobs so the
    // numbers are comparable across runs and machines.
    const Count instructions = smoke ? 20'000 : 1'000'000;
    const Count warmup = smoke ? 5'000 : 500'000;
    const unsigned mp = smoke ? 4 : 8;
    const auto jobs = ladder(instructions, warmup, mp);
    const std::size_t pointsPerPhase = jobs.size() / kOrgCount;

    std::cout << "benchspeed: " << jobs.size()
              << "-point fig6 ladder, " << instructions
              << " instructions + " << warmup << " warmup, mp "
              << mp << ", " << core::sweepWorkers()
              << " worker(s)\n";

    // Off first: the arena map is process-global and never evicted,
    // so the on-mode run that follows starts cold and pays its own
    // generation -- the fair comparison.
    const ModeRun off = runMode(jobs, false);
    std::cout << "  arena off: " << off.wallSeconds << " s wall, "
              << off.refsPerSecond << " refs/s\n";
    const ModeRun on = runMode(jobs, true);
    std::cout << "  arena on:  " << on.wallSeconds << " s wall, "
              << on.refsPerSecond << " refs/s, "
              << on.stats.arenaStreamsGenerated << " streams gen / "
              << on.stats.arenaStreamsReused << " reused\n";
    for (std::size_t o = 0; o < kOrgCount; ++o)
        std::cout << "    " << kOrgNames[o] << ": "
                  << on.phases[o].refsPerSecond()
                  << " refs/s over " << pointsPerPhase
                  << " point(s)\n";

    int rc = 0;
    if (off.dumps != on.dumps) {
        for (std::size_t i = 0; i < off.dumps.size(); ++i) {
            if (off.dumps[i] != on.dumps[i])
                std::cerr << "benchspeed: FAIL: point " << i << " ('"
                          << jobs[i].config.name
                          << "') differs between arena on and off\n";
        }
        rc = 1;
    }
    if (on.stats.arenaStreamsReused == 0) {
        std::cerr << "benchspeed: FAIL: arena-on run reused no "
                     "streams (arena path not exercised)\n";
        rc = 1;
    }
    if (floorRefs > 0.0 && on.refsPerSecond < floorRefs) {
        std::cerr << "benchspeed: FAIL: arena-on rate "
                  << on.refsPerSecond << " refs/s is below the floor "
                  << floorRefs << " refs/s\n";
        rc = 1;
    }

    const double speedup = on.wallSeconds > 0.0
                               ? off.wallSeconds / on.wallSeconds
                               : 0.0;
    const double acquisitions =
        static_cast<double>(on.stats.arenaStreamsGenerated +
                            on.stats.arenaStreamsReused);
    const double hitRate =
        acquisitions > 0.0
            ? static_cast<double>(on.stats.arenaStreamsReused) /
                  acquisitions
            : 0.0;

    obs::JsonValue doc = obs::JsonValue::object();
    doc.members.emplace_back("benchmark",
                             obs::JsonValue::string("fig6-ladder"));
    doc.members.emplace_back("smoke",
                             num(smoke ? 1 : 0));
    doc.members.emplace_back(
        "points", num(static_cast<double>(jobs.size())));
    doc.members.emplace_back(
        "instructions_per_point",
        num(static_cast<double>(instructions)));
    doc.members.emplace_back(
        "warmup_per_point", num(static_cast<double>(warmup)));
    doc.members.emplace_back("mp_level",
                             num(static_cast<double>(mp)));
    doc.members.emplace_back(
        "workers", num(static_cast<double>(off.stats.workers)));
    emitRateContext(doc, floorRefs, calibration);

    obs::JsonValue offJson = obs::JsonValue::object();
    offJson.members.emplace_back("wall_seconds",
                                 num(off.wallSeconds));
    offJson.members.emplace_back("refs_per_second",
                                 num(off.refsPerSecond));
    offJson.members.emplace_back(
        "machine_relative",
        num(machineRelative(off.refsPerSecond, calibration)));
    offJson.members.emplace_back("phases",
                                 phasesJson(off, pointsPerPhase));
    doc.members.emplace_back("arena_off", std::move(offJson));

    obs::JsonValue onJson = obs::JsonValue::object();
    onJson.members.emplace_back("wall_seconds",
                                num(on.wallSeconds));
    onJson.members.emplace_back("refs_per_second",
                                num(on.refsPerSecond));
    onJson.members.emplace_back(
        "machine_relative",
        num(machineRelative(on.refsPerSecond, calibration)));
    onJson.members.emplace_back("phases",
                                phasesJson(on, pointsPerPhase));
    onJson.members.emplace_back(
        "streams_generated",
        num(static_cast<double>(on.stats.arenaStreamsGenerated)));
    onJson.members.emplace_back(
        "streams_reused",
        num(static_cast<double>(on.stats.arenaStreamsReused)));
    onJson.members.emplace_back("stream_hit_rate", num(hitRate));
    onJson.members.emplace_back("gen_seconds",
                                num(on.stats.arenaGenSeconds));
    onJson.members.emplace_back(
        "arena_bytes",
        num(static_cast<double>(on.stats.arenaBytes)));
    doc.members.emplace_back("arena_on", std::move(onJson));

    doc.members.emplace_back("speedup", num(speedup));

    std::string error;
    if (!util::writeFileAtomicRetry(
            outPath, obs::writeJsonString(doc) + "\n", &error)) {
        std::cerr << "benchspeed: cannot write " << outPath << ": "
                  << error << "\n";
        rc = 1;
    } else {
        std::cout << "  speedup " << speedup << "x, hit rate "
                  << hitRate << " -> " << outPath << "\n";
    }
    return rc;
}
