/**
 * @file
 * Single-cache trace simulator (a Dinero-style utility).
 *
 * Runs one cache of arbitrary geometry over a binary trace file and
 * reports miss ratios -- useful for characterising captured traces
 * independently of the full two-level system.
 *
 * Usage:
 *   cachesim <trace-file> [--size WORDS] [--assoc N] [--line WORDS]
 *            [--kind inst|data|unified]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "cache/tag_store.hh"
#include "trace/file.hh"
#include "util/logging.hh"

namespace
{

using namespace gaas;

enum class Kind { Inst, Data, Unified };

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: cachesim <trace-file> [--size WORDS] "
                     "[--assoc N] [--line WORDS] "
                     "[--kind inst|data|unified]\n";
        return 1;
    }

    const std::string path = argv[1];
    cache::CacheConfig cfg{4 * 1024, 1, 4, 4};
    Kind kind = Kind::Unified;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (++i >= argc) {
                std::cerr << "missing value for " << arg << '\n';
                std::exit(1);
            }
            return argv[i];
        };
        if (arg == "--size") {
            cfg.sizeWords = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--assoc") {
            cfg.assoc = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--line") {
            cfg.lineWords = cfg.fetchWords = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--kind") {
            const std::string k = next();
            kind = k == "inst" ? Kind::Inst
                   : k == "data" ? Kind::Data
                                 : Kind::Unified;
        } else {
            std::cerr << "unknown option " << arg << '\n';
            return 1;
        }
    }

    try {
        cache::TagStore store(cfg, "cachesim");
        trace::TraceFileReader reader(path);

        Count accesses = 0, misses = 0;
        Count inst = 0, loads = 0, stores = 0;
        trace::MemRef ref;
        while (reader.next(ref)) {
            switch (ref.kind) {
              case trace::RefKind::Inst:
                ++inst;
                if (kind == Kind::Data)
                    continue;
                break;
              case trace::RefKind::Load:
                ++loads;
                if (kind == Kind::Inst)
                    continue;
                break;
              case trace::RefKind::Store:
                ++stores;
                if (kind == Kind::Inst)
                    continue;
                break;
            }
            ++accesses;
            if (cache::TagStore::Ref line = store.find(ref.addr)) {
                store.touch(line);
            } else {
                ++misses;
                cache::Eviction ev;
                store.allocate(ref.addr, ev);
            }
        }

        std::cout << "trace: " << path << " (" << inst
                  << " inst, " << loads << " loads, " << stores
                  << " stores)\n"
                  << "cache: " << cfg.describe() << '\n'
                  << "accesses: " << accesses << '\n'
                  << "misses:   " << misses << '\n'
                  << "miss ratio: "
                  << (accesses ? static_cast<double>(misses) /
                                     static_cast<double>(accesses)
                               : 0.0)
                  << '\n';
    } catch (const FatalError &err) {
        std::cerr << err.what() << '\n';
        return 1;
    }
    return 0;
}
