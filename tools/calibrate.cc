/**
 * @file
 * Workload calibration tool (development aid, not a paper figure).
 *
 * Prints the observables the synthetic suite is tuned against --
 * reference mix, base CPI, L1/L2 miss ratios, CPI breakdown, context
 * switch interval -- next to the targets the paper states, plus a
 * per-benchmark breakdown to identify offenders.
 *
 * Usage: calibrate [instructions] [mode]
 *   mode: all | base | bench | l2
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/config.hh"
#include "core/simulator.hh"
#include "stats/table.hh"
#include "synth/suite.hh"
#include "util/logging.hh"

using namespace gaas;

namespace
{

void
printBase(Count budget)
{
    const auto cfg = core::baseline();
    const auto res = core::runStandard(cfg, budget, 8, budget / 2);
    const auto &s = res.sys;

    stats::Table t({"observable", "measured", "target (paper)"});
    t.setTitle("Base architecture, MP=8");
    auto row = [&](const char *name, double v, const char *target,
                   int prec = 4) {
        t.newRow().cell(name).cell(v, prec).cell(target);
    };
    row("store fraction",
        static_cast<double>(s.stores) /
            static_cast<double>(res.instructions),
        "0.0725");
    row("load fraction",
        static_cast<double>(s.loads) /
            static_cast<double>(res.instructions),
        "~0.20");
    row("base CPI", res.baseCpi(), "1.238");
    row("L1-I miss / instr",
        static_cast<double>(s.l1iMisses) /
            static_cast<double>(res.instructions),
        "~0.015-0.020");
    row("L1-D miss / instr",
        static_cast<double>(s.l1dReadMisses + s.l1dWriteMisses) /
            static_cast<double>(res.instructions),
        "~0.020-0.030");
    row("write miss ratio", s.l1dWriteMissRatio(), "~0.02");
    row("L2 miss ratio", s.l2MissRatio(), "0.0112 (256KW uni)");
    row("L2 acc / instr",
        static_cast<double>(s.l2iAccesses + s.l2dAccesses) /
            static_cast<double>(res.instructions),
        "~0.04");
    row("mem CPI", res.memCpi(), "~0.415");
    row("total CPI", res.cpi(), "~1.65");
    row("writes % of mem loss",
        100.0 *
            (res.perInstruction(res.comp.l1Writes) +
             res.perInstruction(res.comp.wbWait)) /
            res.memCpi(),
        "24%", 1);
    row("cycles / ctx switch",
        res.contextSwitches
            ? static_cast<double>(res.cycles) /
                  static_cast<double>(res.contextSwitches)
            : 0.0,
        "~310,000", 0);
    t.print(std::cout);
    std::cout << '\n' << res.formatBreakdown() << '\n';
}

void
printBenchmarks(Count budget)
{
    stats::Table t({"benchmark", "ld%", "st%", "baseCPI", "L1-I m/i",
                    "L1-D m/i", "L2 mr", "memCPI"});
    t.setTitle("Per-benchmark solo runs (base architecture, MP=1)");
    for (const auto &spec : synth::workloadSpecs(8)) {
        core::Workload wl = core::Workload::fromSpecs({spec});
        core::Simulator sim(core::baseline(), std::move(wl));
        const auto res = sim.run(budget / 2, budget / 4);
        const auto &s = res.sys;
        const auto instr = static_cast<double>(res.instructions);
        t.newRow()
            .cell(spec.name)
            .cell(100.0 * static_cast<double>(s.loads) / instr, 1)
            .cell(100.0 * static_cast<double>(s.stores) / instr, 1)
            .cell(res.baseCpi(), 3)
            .cell(static_cast<double>(s.l1iMisses) / instr, 4)
            .cell(static_cast<double>(s.l1dReadMisses +
                                      s.l1dWriteMisses) /
                      instr,
                  4)
            .cell(s.l2MissRatio(), 4)
            .cell(res.memCpi(), 3);
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
printL2Sweep(Count budget)
{
    // Table 2 targets, unified 1-way.
    const double targets[] = {0.0335, 0.0240, 0.0186, 0.0133,
                              0.0112, 0.0102, 0.0102};
    stats::Table t({"L2 size", "measured miss ratio", "Table 2"});
    t.setTitle("Unified 1-way L2 sweep (write-only policy)");
    int i = 0;
    for (std::uint64_t size = 16 * 1024; size <= 1024 * 1024;
         size *= 2, ++i) {
        auto cfg = core::afterWritePolicy();
        cfg.l2.cache.sizeWords = size;
        const auto res = core::runStandard(cfg, budget, 8, budget / 2);
        t.newRow()
            .cell(std::to_string(size / 1024) + "KW")
            .cell(res.sys.l2MissRatio(), 4)
            .cell(targets[i], 4);
    }
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    Count budget = 2'000'000;
    std::string mode = "all";
    if (argc > 1)
        budget = std::strtoull(argv[1], nullptr, 10);
    if (argc > 2)
        mode = argv[2];

    try {
        if (mode == "all" || mode == "base")
            printBase(budget);
        if (mode == "all" || mode == "bench")
            printBenchmarks(budget);
        if (mode == "all" || mode == "l2")
            printL2Sweep(budget);
    } catch (const FatalError &err) {
        std::cerr << err.what() << '\n';
        return 1;
    }
    return 0;
}
