/**
 * @file
 * gaassim: the main simulator front end.
 *
 * Runs a configuration (a preset name or a config file) over the
 * standard synthetic workload or a set of trace files, and writes a
 * gem5-style flat statistics dump.
 *
 * Usage:
 *   gaassim [--preset NAME | --config FILE]
 *           [--trace FILE]... [--instructions N] [--warmup N]
 *           [--mp N] [--slice CYCLES] [--stats FILE]
 *           [--stats-json FILE]
 *
 * Presets: base, write-only, split-l2, fetch-8w, concurrent,
 *          load-bypass, optimized, exchanged.
 *
 * Examples:
 *   gaassim --preset optimized --instructions 8000000
 *   gaassim --config my.cfg --trace a.gtrc --trace b.gtrc \
 *           --stats out/stats.txt
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/config_io.hh"
#include "core/simulator.hh"
#include "core/stats_dump.hh"
#include "trace/compose.hh"
#include "trace/file.hh"
#include "util/logging.hh"

namespace
{

using namespace gaas;

core::SystemConfig
presetByName(const std::string &name)
{
    if (name == "base")
        return core::baseline();
    if (name == "write-only")
        return core::afterWritePolicy();
    if (name == "split-l2")
        return core::afterSplitL2();
    if (name == "fetch-8w")
        return core::afterFetchSize();
    if (name == "concurrent")
        return core::afterConcurrentIRefill();
    if (name == "load-bypass")
        return core::afterLoadBypass();
    if (name == "optimized")
        return core::optimized();
    if (name == "exchanged")
        return core::splitL2Exchanged();
    gaas_fatal("unknown preset '", name,
               "' (base, write-only, split-l2, fetch-8w, "
               "concurrent, load-bypass, optimized, exchanged)");
}

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: gaassim [--preset NAME | --config FILE]\n"
           "               [--trace FILE]... [--instructions N]\n"
           "               [--warmup N] [--mp N] [--slice CYCLES]\n"
           "               [--stats FILE] [--stats-json FILE]\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    auto cfg = core::baseline();
    std::vector<std::string> traces;
    Count instructions = 4'000'000;
    Count warmup = ~Count{0}; // default: half the budget
    unsigned mp = 8;
    std::string stats_path;
    std::string stats_json_path;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    usage();
                return argv[i];
            };
            if (arg == "--preset") {
                cfg = presetByName(next());
            } else if (arg == "--config") {
                cfg = core::loadConfigFile(next());
            } else if (arg == "--trace") {
                traces.push_back(next());
            } else if (arg == "--instructions") {
                instructions =
                    std::strtoull(next().c_str(), nullptr, 10);
            } else if (arg == "--warmup") {
                warmup = std::strtoull(next().c_str(), nullptr, 10);
            } else if (arg == "--mp") {
                mp = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            } else if (arg == "--slice") {
                cfg.timeSliceCycles =
                    std::strtoull(next().c_str(), nullptr, 10);
            } else if (arg == "--stats") {
                stats_path = next();
            } else if (arg == "--stats-json") {
                stats_json_path = next();
            } else {
                std::cerr << "unknown option " << arg << '\n';
                usage();
            }
        }
        if (warmup == ~Count{0})
            warmup = instructions / 2;

        core::Workload wl;
        if (traces.empty()) {
            wl = core::Workload::standard(mp);
        } else {
            for (const auto &path : traces) {
                wl.add(std::make_unique<trace::LoopSource>(
                           std::make_unique<trace::TraceFileReader>(
                               path)),
                       1.238, path);
            }
        }

        std::cout << cfg.describe() << "\n\n";
        core::Simulator sim(cfg, std::move(wl));
        const auto res = sim.run(instructions, warmup);
        std::cout << res.formatBreakdown();

        if (!stats_json_path.empty()) {
            if (core::dumpStatsJsonFile(res, stats_json_path))
                std::cout << "[stats-json: " << stats_json_path
                          << "]\n";
        }
        if (!stats_path.empty()) {
            if (core::dumpStatsFile(res, stats_path))
                std::cout << "[stats: " << stats_path << "]\n";
        } else if (stats_json_path.empty()) {
            std::cout << '\n';
            core::dumpStats(res, std::cout);
        }
    } catch (const FatalError &err) {
        std::cerr << err.what() << '\n';
        return 1;
    }
    return 0;
}
