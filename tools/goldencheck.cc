/**
 * @file
 * goldencheck: the golden-run regression harness.
 *
 * Runs a fixed set of pinned-seed, reduced-budget simulations -- the
 * full preset ladder plus representative Fig. 5 (write policy) and
 * Fig. 6 (L2 organisation) design points -- dumps each result as a
 * gem5-style flat statistics file, and diffs it bit-exactly against
 * the checked-in golden copy in tests/golden/.  Any PRNG-stream,
 * timing-model, or accounting change shows up as a first-divergence
 * diff; DESIGN.md's "determinism is a hard guarantee" becomes an
 * executable check.
 *
 * Usage:
 *   goldencheck [--golden-dir DIR] [--only NAME]... [--list]
 *               [--bless] [--json-roundtrip]
 *
 *   --golden-dir DIR  where the .stats files live
 *                     (default: tests/golden)
 *   --only NAME       check just this point (repeatable)
 *   --list            print the point names and exit
 *   --bless           regenerate the golden files from the current
 *                     build instead of checking (review the diff
 *                     before committing!)
 *   --json-roundtrip  instead of the flat-dump diff, dump each
 *                     selected point as JSON, parse it back, re-emit
 *                     it and byte-compare -- locks the JSON schema
 *                     and the parser/writer pair together
 *
 * Exit status: 0 all points match, 1 any mismatch/missing golden,
 * 2 usage error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/stats_dump.hh"
#include "obs/json.hh"
#include "util/file_io.hh"
#include "util/logging.hh"

namespace
{

using namespace gaas;

/** One golden design point: a named, fully pinned simulation. */
struct GoldenPoint
{
    const char *name;
    core::SystemConfig config;
    unsigned mpLevel;
    Count instructions;
    Count warmup;
};

/**
 * The golden set.  Budgets are deliberately small (the harness runs
 * on every ctest invocation) but past the warmup knee, so every CPI
 * bucket and miss counter is nonzero and a perturbed timing model
 * cannot hide.  Everything is pinned: the synthetic workload derives
 * its PRNG streams from fixed per-benchmark seeds, so the only free
 * variable is the code under test.
 */
std::vector<GoldenPoint>
goldenPoints()
{
    constexpr Count kInstructions = 200'000;
    constexpr Count kWarmup = 100'000;
    constexpr unsigned kMp = 8;

    std::vector<GoldenPoint> points;
    auto add = [&](const char *name, core::SystemConfig cfg) {
        points.push_back(GoldenPoint{name, std::move(cfg), kMp,
                                     kInstructions, kWarmup});
    };

    // The preset ladder: base architecture -> Fig. 11 optimized.
    add("ladder-base", core::baseline());
    add("ladder-write-only", core::afterWritePolicy());
    add("ladder-split-l2", core::afterSplitL2());
    add("ladder-fetch-8w", core::afterFetchSize());
    add("ladder-concurrent", core::afterConcurrentIRefill());
    add("ladder-load-bypass", core::afterLoadBypass());
    add("ladder-optimized", core::optimized());
    add("ladder-exchanged", core::splitL2Exchanged());

    // Fig. 5 representatives: the two non-ladder write policies at
    // the 6-cycle crossover region.
    {
        auto cfg = core::withWritePolicy(
            core::baseline(), core::WritePolicy::WriteMissInvalidate);
        cfg.name = "fig5-invalidate-6cy";
        add("fig5-invalidate-6cy", cfg);
    }
    {
        auto cfg = core::withWritePolicy(
            core::baseline(), core::WritePolicy::SubblockPlacement);
        cfg.name = "fig5-subblock-6cy";
        add("fig5-subblock-6cy", cfg);
    }

    // Fig. 6 representatives: the 64KW decision point, unified vs
    // logically split, plus the 2-way (+1 cycle) variant.
    auto fig6 = [&](const char *name, core::L2Org org,
                    unsigned assoc, Cycles access) {
        auto cfg = core::afterWritePolicy();
        cfg.name = name;
        cfg.l2Org = org;
        cfg.l2.cache.sizeWords = 64 * 1024;
        cfg.l2.cache.assoc = assoc;
        cfg.l2.accessTime = access;
        add(name, cfg);
    };
    fig6("fig6-unified-64kw", core::L2Org::Unified, 1, 6);
    fig6("fig6-logical-64kw", core::L2Org::LogicalSplit, 1, 6);
    fig6("fig6-unified-64kw-2way", core::L2Org::Unified, 2, 7);

    // At the reduced budget the 500k-cycle slice almost never
    // preempts, so pin one short-slice point to keep the round-robin
    // scheduler's accounting under the harness too (Fig. 3 regime).
    {
        auto cfg = core::baseline();
        cfg.name = "sched-short-slice";
        cfg.timeSliceCycles = 25'000;
        add("sched-short-slice", cfg);
    }

    return points;
}

void reportDiff(const std::string &name, const std::string &expected,
                const std::string &actual);

/** Run @p point and return its result. */
core::SimResult
runPointResult(const GoldenPoint &point)
{
    return core::runStandard(point.config, point.instructions,
                             point.mpLevel, point.warmup);
}

/** Run @p point and render its stats dump to a string. */
std::string
runPoint(const GoldenPoint &point)
{
    std::ostringstream os;
    core::dumpStats(runPointResult(point), os);
    return os.str();
}

/**
 * JSON schema lock: emit @p point as JSON, parse it back, re-emit,
 * and require the two byte streams to be identical.  Any emitter
 * construct the parser cannot reproduce (or vice versa) fails here
 * long before an external consumer sees it.
 */
bool
checkJsonRoundtrip(const GoldenPoint &point)
{
    std::ostringstream os;
    core::dumpStatsJson(runPointResult(point), os);
    const std::string emitted = os.str();

    std::string reemitted;
    try {
        reemitted = obs::writeJsonString(obs::parseJson(emitted));
    } catch (const FatalError &err) {
        std::cerr << "FAIL " << point.name
                  << ": emitted JSON does not parse: " << err.what()
                  << '\n';
        return false;
    }
    if (reemitted != emitted) {
        std::cerr << "FAIL " << point.name
                  << ": JSON round-trip is not byte-identical\n";
        reportDiff(point.name, emitted, reemitted);
        return false;
    }
    std::cout << "ok   " << point.name << " (json round-trip)\n";
    return true;
}

/** @return the whole of @p path, or nullopt-ish empty + ok=false. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Print a first-divergence report between expected and actual. */
void
reportDiff(const std::string &name, const std::string &expected,
           const std::string &actual)
{
    std::istringstream want(expected), got(actual);
    std::string wline, gline;
    unsigned lineno = 0;
    while (true) {
        ++lineno;
        const bool haveWant = static_cast<bool>(
            std::getline(want, wline));
        const bool haveGot = static_cast<bool>(
            std::getline(got, gline));
        if (!haveWant && !haveGot)
            break;
        if (haveWant != haveGot || wline != gline) {
            std::cerr << "  first divergence at line " << lineno
                      << ":\n"
                      << "    golden:  "
                      << (haveWant ? wline : "<end of file>") << '\n'
                      << "    current: "
                      << (haveGot ? gline : "<end of file>") << '\n';
            return;
        }
    }
    std::cerr << "  (same lines, different bytes -- check line "
                 "endings)\n";
    (void)name;
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: goldencheck [--golden-dir DIR] "
                 "[--only NAME]... [--list] [--bless] "
                 "[--json-roundtrip]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string goldenDir = "tests/golden";
    std::vector<std::string> only;
    bool bless = false;
    bool list = false;
    bool json_roundtrip = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--golden-dir") {
            goldenDir = next();
        } else if (arg == "--only") {
            only.push_back(next());
        } else if (arg == "--bless") {
            bless = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--json-roundtrip") {
            json_roundtrip = true;
        } else {
            std::cerr << "unknown option " << arg << '\n';
            usage();
        }
    }

    try {
        auto points = goldenPoints();
        if (list) {
            for (const auto &p : points)
                std::cout << p.name << '\n';
            return 0;
        }
        if (!only.empty()) {
            std::vector<GoldenPoint> picked;
            for (const auto &name : only) {
                bool found = false;
                for (auto &p : points) {
                    if (name == p.name) {
                        picked.push_back(std::move(p));
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    std::cerr << "goldencheck: no point named '"
                              << name << "' (see --list)\n";
                    return 2;
                }
            }
            points = std::move(picked);
        }

        if (json_roundtrip) {
            unsigned rt_failures = 0;
            for (const auto &point : points) {
                if (!checkJsonRoundtrip(point))
                    ++rt_failures;
            }
            if (rt_failures) {
                std::cerr << rt_failures << " of " << points.size()
                          << " JSON round-trip(s) diverged\n";
                return 1;
            }
            std::cout << "all " << points.size()
                      << " JSON round-trips byte-exact\n";
            return 0;
        }

        unsigned failures = 0;
        for (const auto &point : points) {
            const std::string path =
                goldenDir + "/" + point.name + ".stats";
            const std::string actual = runPoint(point);
            if (bless) {
                // Atomic publication: a bless interrupted mid-write
                // must never leave a truncated golden file that a
                // later check would "pass" against.
                std::string error;
                if (!util::writeFileAtomicRetry(path, actual,
                                                &error)) {
                    std::cerr << "goldencheck: " << error << '\n';
                    return 1;
                }
                std::cout << "blessed " << point.name << " -> "
                          << path << '\n';
                continue;
            }
            std::string expected;
            if (!readFile(path, expected)) {
                std::cerr << "FAIL " << point.name << ": no golden "
                          << "file " << path
                          << " (run goldencheck --bless)\n";
                ++failures;
                continue;
            }
            if (expected != actual) {
                std::cerr << "FAIL " << point.name
                          << ": stats diverge from " << path << '\n';
                reportDiff(point.name, expected, actual);
                ++failures;
            } else {
                std::cout << "ok   " << point.name << '\n';
            }
        }

        if (bless) {
            std::cout << points.size()
                      << " golden file(s) regenerated in "
                      << goldenDir << "; review with git diff "
                      << "before committing\n";
            return 0;
        }
        if (failures) {
            std::cerr << failures << " of " << points.size()
                      << " golden point(s) diverged\n";
            return 1;
        }
        std::cout << "all " << points.size()
                  << " golden points bit-exact\n";
    } catch (const FatalError &err) {
        std::cerr << "goldencheck: " << err.what() << '\n';
        return 1;
    }
    return 0;
}
