/**
 * @file
 * Trace-file packer: converts between the flat v1/v2 record format
 * and the block-compressed v3 format (trace/v3.hh), writes v3 files
 * straight from the synthetic benchmark suite, and verifies files
 * and round-trips.
 *
 * Usage:
 *   tracepack pack   <in> <out> [--block-refs N]
 *   tracepack unpack <in> <out>
 *   tracepack synth  <out> [--bench I] [--instructions N]
 *                    [--seed S] [--block-refs N]
 *   tracepack verify <file> [--against OTHER]
 *   tracepack info   <file>
 *   tracepack drain  <file> [--stream-mb M]
 *
 * `pack` reads any supported version (v1/v2/v3) and writes v3;
 * `unpack` writes the flat v2 layout, so `pack` then `unpack` is a
 * byte-level round trip of the record stream.  `synth` plays one
 * pass of a suite benchmark (default: benchmark 0) into a v3 file --
 * the cheap way to make multi-gigabyte test inputs.  `verify` fully
 * decodes a file (exercising every checksum) and, with --against,
 * record-compares two files of any version mix.  `drain` replays a
 * v3 file through the bounded-memory StreamSource and reports
 * refs/s plus peak RSS (VmHWM) -- the probe the RSS-ceiling shell
 * test uses.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "synth/suite.hh"
#include "trace/file.hh"
#include "trace/stream.hh"
#include "trace/v3.hh"
#include "util/env.hh"
#include "util/error.hh"

namespace
{

using namespace gaas;

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: tracepack pack   <in> <out> [--block-refs N]\n"
        "       tracepack unpack <in> <out>\n"
        "       tracepack synth  <out> [--bench I] "
        "[--instructions N] [--seed S] [--block-refs N]\n"
        "       tracepack verify <file> [--against OTHER]\n"
        "       tracepack info   <file>\n"
        "       tracepack drain  <file> [--stream-mb M]\n";
    std::exit(2);
}

/** Strict numeric option value (tracepack pack in --block-refs 4x
 *  must die, not truncate). */
std::uint64_t
numValue(const std::string &opt, const char *text)
{
    const auto v = parseU64(text);
    if (!v) {
        std::cerr << "tracepack: bad value '" << text << "' for "
                  << opt << " (positive decimal integer required)\n";
        std::exit(2);
    }
    return *v;
}

/** Peak resident set size (VmHWM) in KiB, or 0 if unavailable. */
std::uint64_t
peakRssKb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
    return 0;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

int
cmdPack(const std::string &in, const std::string &out,
        std::uint32_t block_refs)
{
    auto src = trace::openTraceFile(in);
    trace::TraceV3Writer writer(out, block_refs);
    const std::uint64_t n = writer.writeAll(*src);
    writer.close();
    const trace::V3FileInfo info = trace::v3FileInfo(out);
    std::cout << "packed " << n << " records into " << out
              << " (block " << info.blockRefs << " records, "
              << (info.packable() ? "packable" : "not packable")
              << ", digest " << info.digest << ")\n";
    return 0;
}

int
cmdUnpack(const std::string &in, const std::string &out)
{
    trace::TraceV3Reader reader(in);
    trace::TraceFileWriter writer(out);
    const std::uint64_t n = writer.writeAll(reader);
    writer.close();
    std::cout << "unpacked " << n << " records into " << out
              << " (format v" << trace::kTraceVersion << ")\n";
    return 0;
}

int
cmdSynth(const std::string &out, std::uint64_t bench,
         std::uint64_t instructions, std::uint64_t seed,
         std::uint32_t block_refs)
{
    const auto &suite = synth::defaultSuite();
    if (bench >= suite.size()) {
        std::cerr << "tracepack: --bench " << bench
                  << " out of range (suite has " << suite.size()
                  << " benchmarks)\n";
        return 2;
    }
    synth::BenchmarkSpec spec = suite[bench];
    if (instructions)
        spec.simInstructions = instructions;
    if (seed)
        spec.seed = seed;
    auto src = synth::makeBenchmark(spec);
    trace::TraceV3Writer writer(out, block_refs);
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t n = writer.writeAll(*src);
    writer.close();
    const double secs = secondsSince(start);
    std::cout << "synthesized " << n << " records ('" << spec.name
              << "', " << spec.simInstructions
              << " instructions) into " << out;
    if (secs > 0.0)
        std::cout << " at "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(n) / secs)
                  << " refs/s";
    std::cout << '\n';
    return 0;
}

int
cmdVerify(const std::string &path, const std::string &against)
{
    // A full sequential decode exercises the header, the seek table
    // and every frame + payload checksum; any corruption dies with
    // the codec's byte-accurate SimError.
    auto src = trace::openTraceFile(path);
    constexpr std::size_t kBatch = 1u << 14;
    std::vector<trace::MemRef> a(kBatch);
    std::uint64_t n = 0;
    if (against.empty()) {
        for (;;) {
            const std::size_t got = src->nextBatch(a.data(), kBatch);
            n += got;
            if (got < kBatch)
                break;
        }
        std::cout << "ok: " << path << " decodes cleanly (" << n
                  << " records)\n";
        return 0;
    }

    auto other = trace::openTraceFile(against);
    std::vector<trace::MemRef> b(kBatch);
    for (;;) {
        const std::size_t gotA = src->nextBatch(a.data(), kBatch);
        const std::size_t gotB = other->nextBatch(b.data(), kBatch);
        const std::size_t common = std::min(gotA, gotB);
        for (std::size_t i = 0; i < common; ++i) {
            if (a[i].addr != b[i].addr || a[i].kind != b[i].kind ||
                a[i].syscall != b[i].syscall ||
                a[i].partialWord != b[i].partialWord) {
                std::cerr << "mismatch at record " << n + i << ": "
                          << path << " has addr 0x" << std::hex
                          << a[i].addr << ", " << against
                          << " has addr 0x" << b[i].addr << std::dec
                          << '\n';
                return 1;
            }
        }
        n += common;
        if (gotA != gotB) {
            std::cerr << "length mismatch after " << n
                      << " records: " << (gotA < gotB ? path : against)
                      << " ends first\n";
            return 1;
        }
        if (gotA < kBatch)
            break;
    }
    std::cout << "ok: " << path << " and " << against
              << " are record-identical (" << n << " records)\n";
    return 0;
}

int
cmdInfo(const std::string &path)
{
    const trace::V3FileInfo info = trace::v3FileInfo(path);
    const std::uint64_t blocks =
        (info.records + info.blockRefs - 1) / info.blockRefs;
    std::cout << path << ":\n"
              << "  format:     v3 (block-compressed)\n"
              << "  records:    " << info.records << '\n'
              << "  block size: " << info.blockRefs << " records ("
              << blocks << " blocks)\n"
              << "  packable:   "
              << (info.packable() ? "yes" : "no") << '\n'
              << "  digest:     " << info.digest << '\n';
    return 0;
}

int
cmdDrain(const std::string &path, std::uint64_t stream_mb)
{
    trace::StreamOptions options;
    if (stream_mb)
        options.memoryBudgetBytes =
            static_cast<std::size_t>(stream_mb) << 20;
    trace::StreamSource src(path, options);
    constexpr std::size_t kBatch = 1u << 14;
    std::vector<std::uint32_t> packed(kBatch);
    std::vector<trace::MemRef> refs(kBatch);
    std::uint64_t n = 0;
    const auto start = std::chrono::steady_clock::now();
    if (src.packedCapable()) {
        for (;;) {
            const std::size_t got =
                src.nextBatchPacked(packed.data(), kBatch);
            n += got;
            if (got < kBatch)
                break;
        }
    } else {
        for (;;) {
            const std::size_t got =
                src.nextBatch(refs.data(), kBatch);
            n += got;
            if (got < kBatch)
                break;
        }
    }
    const double secs = secondsSince(start);
    std::cout << "drained " << n << " records ("
              << (src.packedCapable() ? "packed" : "unpacked")
              << " path, " << src.slotCount() << " slots, "
              << src.bufferBytes() << " buffer bytes)\n"
              << "refs_per_second: "
              << (secs > 0.0 ? static_cast<std::uint64_t>(
                                   static_cast<double>(n) / secs)
                             : 0)
              << '\n'
              << "peak_rss_kb: " << peakRssKb() << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string cmd = argv[1];

    // Positional args first, then options.
    std::vector<std::string> pos;
    std::uint64_t blockRefs = 0;
    std::uint64_t bench = 0;
    std::uint64_t instructions = 0;
    std::uint64_t seed = 0;
    std::uint64_t streamMb = 0;
    std::string against;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (++i >= argc) {
                std::cerr << "tracepack: missing value for " << arg
                          << '\n';
                std::exit(2);
            }
            return argv[i];
        };
        if (arg == "--block-refs")
            blockRefs = numValue(arg, next());
        else if (arg == "--bench")
            bench = numValue(arg, next());
        else if (arg == "--instructions")
            instructions = numValue(arg, next());
        else if (arg == "--seed")
            seed = numValue(arg, next());
        else if (arg == "--stream-mb")
            streamMb = numValue(arg, next());
        else if (arg == "--against")
            against = next();
        else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "tracepack: unknown option " << arg << '\n';
            usage();
        } else
            pos.push_back(arg);
    }
    if (blockRefs > trace::kV3MaxBlockRefs) {
        std::cerr << "tracepack: --block-refs " << blockRefs
                  << " exceeds the format maximum "
                  << trace::kV3MaxBlockRefs << '\n';
        return 2;
    }
    const auto block = blockRefs
                           ? static_cast<std::uint32_t>(blockRefs)
                           : trace::kV3DefaultBlockRefs;

    try {
        if (cmd == "pack" && pos.size() == 2)
            return cmdPack(pos[0], pos[1], block);
        if (cmd == "unpack" && pos.size() == 2)
            return cmdUnpack(pos[0], pos[1]);
        if (cmd == "synth" && pos.size() == 1)
            return cmdSynth(pos[0], bench, instructions, seed,
                            block);
        if (cmd == "verify" && pos.size() == 1)
            return cmdVerify(pos[0], against);
        if (cmd == "info" && pos.size() == 1)
            return cmdInfo(pos[0]);
        if (cmd == "drain" && pos.size() == 1)
            return cmdDrain(pos[0], streamMb);
    } catch (const FatalError &err) {
        std::cerr << "tracepack: " << err.what() << '\n';
        return 1;
    }
    usage();
}
